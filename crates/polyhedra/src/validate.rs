//! Domain validation: the well-formedness preconditions of ranking.
//!
//! The ranking construction (symbolic Faulhaber counting) is correct when
//! every trip count `u_k − l_k + 1` is **non-negative** for every prefix
//! in the domain; the closed-form recovery additionally expects them to
//! be *positive* (a nest with occasionally-empty inner loops still
//! collapses correctly, but recovery then relies on the exact-correction
//! step rather than the raw floating root — see `nrl-core`).
//!
//! Two validators are provided:
//! * a **symbolic proof** via Fourier–Motzkin under affine parameter
//!   assumptions (sound: "proved" means no parameter value allowed by the
//!   assumptions can produce a negative trip count), and
//! * an **exhaustive check** for bound nests (ground truth on small
//!   domains, used by the property tests).

use crate::affine::Affine;
use crate::fm::{Constraint, System};
use crate::nest::NestSpec;
use nrl_rational::Rational;

/// Outcome of the symbolic trip-count proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TripProof {
    /// No prefix allowed by the assumptions can yield a negative
    /// (resp. non-positive, for `strict`) trip count.
    Proved,
    /// The rational relaxation admits a potential violation at `level`.
    /// This is conservative: integer infeasibility may still hold.
    Unproved {
        /// Level whose trip count could not be proven non-negative.
        level: usize,
    },
}

/// A precomputed, parameter-space form of the symbolic trip-count
/// proof: per level, the Fourier–Motzkin projection of the
/// violation system (prefix domain ∧ negative trip count) onto the
/// **parameters**. Built once per nest shape by
/// [`NestSpec::trip_count_certificate`]; [`check`](Self::check) then
/// decides [`TripProof`] for any concrete parameter vector in
/// `O(rows · nparams)` rational dot products — no elimination at
/// bind/instantiate time.
///
/// FM projection is exact over the rationals, so the outcome is
/// identical to running
/// [`prove_trip_counts_at`](NestSpec::prove_trip_counts_at) from
/// scratch: a violation is rationally possible at `p` iff `p`
/// satisfies every projected row of some level.
#[derive(Clone, Debug)]
pub struct TripCountCertificate {
    nparams: usize,
    /// Per level: the projected constraints `Σ coeffs·p + constant ≥ 0`
    /// over the parameters, describing the parameter vectors at which a
    /// trip-count violation is rationally feasible.
    levels: Vec<Vec<(Vec<Rational>, Rational)>>,
}

impl TripCountCertificate {
    /// Number of parameters the certificate was built for.
    pub fn nparams(&self) -> usize {
        self.nparams
    }

    /// Decides the trip-count proof at concrete parameter values, with
    /// the same outcome [`NestSpec::prove_trip_counts_at`] computes by
    /// eliminating from scratch.
    pub fn check(&self, params: &[i64]) -> TripProof {
        assert_eq!(params.len(), self.nparams, "parameter arity mismatch");
        for (level, rows) in self.levels.iter().enumerate() {
            let violation_feasible = rows.iter().all(|(coeffs, constant)| {
                let mut acc = *constant;
                for (c, &p) in coeffs.iter().zip(params) {
                    acc += *c * Rational::from_int(p as i128);
                }
                acc >= Rational::ZERO
            });
            if violation_feasible {
                return TripProof::Unproved { level };
            }
        }
        TripProof::Proved
    }
}

impl NestSpec {
    fn affine_to_constraint(&self, coeffs: Vec<i64>, constant: i64) -> Constraint {
        Constraint::from_ints(&coeffs, constant)
    }

    /// Precomputes the parameter-space [`TripCountCertificate`] for
    /// this nest: the analyze-time half of domain validation. The
    /// per-level violation systems are built exactly as in
    /// [`prove_trip_counts`](Self::prove_trip_counts) (without
    /// parameter assumptions) and the iterators are eliminated, leaving
    /// constraints over the parameters only.
    pub fn trip_count_certificate(&self, strict: bool) -> TripCountCertificate {
        let d = self.depth();
        let nparams = self.nparams();
        let mut levels = Vec::with_capacity(d);
        for level in 0..d {
            let mut sys = self.violation_system(level, strict);
            // Project out every iterator, leaving the parameter shadow.
            let iters = self.space().niters();
            for v in 0..iters {
                sys = sys.project_out(v);
            }
            levels.push(sys.param_rows(iters));
        }
        TripCountCertificate { nparams, levels }
    }

    /// The level-`level` trip-count violation system: prefix domain
    /// (`l_q ≤ i_q ≤ u_q` for `q < level`) plus the violation row
    /// (`trip < 0`, or `trip ≤ 0` in strict mode). Shared by
    /// [`prove_trip_counts`](Self::prove_trip_counts) and
    /// [`trip_count_certificate`](Self::trip_count_certificate) so the
    /// certificate's outcome cannot drift from the fresh proof's.
    fn violation_system(&self, level: usize, strict: bool) -> System {
        let n = self.space().len();
        let mut sys = System::new(n);
        for q in 0..level {
            let lo = self.lower(q);
            let hi = self.upper(q);
            // i_q − lo ≥ 0
            let mut c: Vec<i64> = (0..n).map(|v| -lo.coeff(v)).collect();
            c[q] += 1;
            sys.add(self.affine_to_constraint(c, -lo.constant_term()));
            // hi − i_q ≥ 0
            let mut c: Vec<i64> = (0..n).map(|v| hi.coeff(v)).collect();
            c[q] -= 1;
            sys.add(self.affine_to_constraint(c, hi.constant_term()));
        }
        // Violation: trip < 0 ⟺ lo − hi − 2 ≥ 0 (integers);
        // trip ≤ 0 (strict mode) ⟺ lo − hi − 1 ≥ 0.
        let lo = self.lower(level);
        let hi = self.upper(level);
        let slack = if strict { -1 } else { -2 };
        let coeffs: Vec<i64> = (0..n).map(|v| lo.coeff(v) - hi.coeff(v)).collect();
        let constant = lo.constant_term() - hi.constant_term() + slack;
        sys.add(self.affine_to_constraint(coeffs, constant));
        sys
    }

    /// Attempts to prove that every trip count is non-negative
    /// (`strict = false`) or strictly positive (`strict = true`) for all
    /// parameter values satisfying `assumptions ≥ 0`.
    ///
    /// Variables of the Fourier–Motzkin system are the iterators followed
    /// by the parameters, in the nest's own [`Space`](crate::Space)
    /// ordering.
    pub fn prove_trip_counts(
        &self,
        assumptions: &[crate::affine::Affine],
        strict: bool,
    ) -> TripProof {
        let n = self.space().len();
        for level in 0..self.depth() {
            let mut sys = self.violation_system(level, strict);
            // Parameter assumptions.
            for a in assumptions {
                assert_eq!(a.space(), self.space(), "assumption space mismatch");
                let coeffs: Vec<i64> = (0..n).map(|v| a.coeff(v)).collect();
                sys.add(self.affine_to_constraint(coeffs, a.constant_term()));
            }
            if sys.is_rationally_feasible() {
                return TripProof::Unproved { level };
            }
        }
        TripProof::Proved
    }

    /// [`prove_trip_counts`](Self::prove_trip_counts) with every
    /// parameter pinned to a concrete value (`p = v` expressed as the
    /// assumption pair `p − v ≥ 0 ∧ v − p ≥ 0`).
    ///
    /// Cost is `O(depth)` Fourier–Motzkin eliminations, independent of
    /// the domain size — the fast path for validating production-sized
    /// domains where [`check_trip_counts`](Self::check_trip_counts)
    /// would have to walk billions of prefixes. `Proved` is definitive;
    /// `Unproved` is conservative (the rational relaxation admits a
    /// violation that integers may avoid) and callers should fall back
    /// to the exhaustive check.
    pub fn prove_trip_counts_at(&self, params: &[i64], strict: bool) -> TripProof {
        assert_eq!(params.len(), self.nparams(), "parameter arity mismatch");
        let s = self.space();
        let d = self.depth();
        let mut assumptions = Vec::with_capacity(2 * params.len());
        for (m, &v) in params.iter().enumerate() {
            let p = Affine::unit(s.clone(), d + m);
            assumptions.push(&p - v); // p − v ≥ 0
            assumptions.push(-(&p - v)); // v − p ≥ 0
        }
        self.prove_trip_counts(&assumptions, strict)
    }

    /// Exhaustively checks trip counts for fixed parameters. Returns the
    /// first offending `(level, prefix)` if any trip count is negative
    /// (or non-positive in `strict` mode).
    ///
    /// Cost is the number of *proper prefixes* (length < depth), NOT the
    /// domain size: the innermost trip count is a function of the
    /// surrounding prefix only, so the last level is checked without
    /// being enumerated. A depth-2 triangular nest of side `N` costs
    /// `O(N)`, not `O(N²)`.
    pub fn check_trip_counts(&self, params: &[i64], strict: bool) -> Result<(), (usize, Vec<i64>)> {
        let bound = self.bind(params);
        let d = self.depth();
        // Walk prefixes level by level, stopping at the last level: its
        // trip count is determined by the prefix, so checking it does
        // not require iterating it.
        fn recurse(
            bound: &crate::bound::BoundNest,
            d: usize,
            prefix: &mut Vec<i64>,
            strict: bool,
        ) -> Result<(), (usize, Vec<i64>)> {
            let level = prefix.len();
            let lo = bound.lower(level, prefix);
            let hi = bound.upper(level, prefix);
            let trip = hi - lo + 1;
            if trip < 0 || (strict && trip == 0) {
                return Err((level, prefix.clone()));
            }
            if level + 1 == d {
                return Ok(());
            }
            for x in lo..=hi {
                prefix.push(x);
                recurse(bound, d, prefix, strict)?;
                prefix.pop();
            }
            Ok(())
        }
        if d == 0 {
            return Ok(());
        }
        recurse(&bound, d, &mut Vec::new(), strict)
    }

    /// Symbolic total-count sanity bound: the rational interval of each
    /// iterator over the whole domain under assumptions (used by code
    /// generators to document index ranges). `None` = unbounded side.
    pub fn iterator_interval(
        &self,
        level: usize,
        assumptions: &[crate::affine::Affine],
    ) -> Option<(Option<Rational>, Option<Rational>)> {
        let n = self.space().len();
        let mut sys = System::new(n);
        for q in 0..self.depth() {
            let lo = self.lower(q);
            let hi = self.upper(q);
            let mut c: Vec<i64> = (0..n).map(|v| -lo.coeff(v)).collect();
            c[q] += 1;
            sys.add(self.affine_to_constraint(c, -lo.constant_term()));
            let mut c: Vec<i64> = (0..n).map(|v| hi.coeff(v)).collect();
            c[q] -= 1;
            sys.add(self.affine_to_constraint(c, hi.constant_term()));
        }
        for a in assumptions {
            let coeffs: Vec<i64> = (0..n).map(|v| a.coeff(v)).collect();
            sys.add(self.affine_to_constraint(coeffs, a.constant_term()));
        }
        sys.interval_of(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;

    #[test]
    fn correlation_proved_under_assumption() {
        let nest = NestSpec::correlation();
        let s = nest.space().clone();
        // Assume N ≥ 2 (the nest is empty below that, and the j-loop trip
        // count N − 1 − i ≥ 1 holds for i ≤ N − 2).
        let assumptions = vec![s.var("N") - 2];
        assert_eq!(
            nest.prove_trip_counts(&assumptions, true),
            TripProof::Proved
        );
    }

    #[test]
    fn figure6_proved() {
        let nest = NestSpec::figure6();
        let s = nest.space().clone();
        let assumptions = vec![s.var("N") - 2];
        assert_eq!(
            nest.prove_trip_counts(&assumptions, true),
            TripProof::Proved
        );
    }

    #[test]
    fn violation_not_provable() {
        // for i in 0..=4 { for j in 3..=i }: empty for i < 3, so the
        // strict proof must fail (and even non-strict trip counts go
        // negative: e.g. i = 0 gives trip = 0 − 3 + 1 = −2).
        let s = Space::new(&["i", "j"], &[]);
        let nest = NestSpec::new(
            s.clone(),
            vec![(s.cst(0), s.cst(4)), (s.cst(3), s.var("i"))],
        )
        .unwrap();
        assert_eq!(
            nest.prove_trip_counts(&[], false),
            TripProof::Unproved { level: 1 }
        );
        let err = nest.check_trip_counts(&[], false).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn exhaustive_check_agrees() {
        let nest = NestSpec::correlation();
        assert!(nest.check_trip_counts(&[10], true).is_ok());
        // N = 1: the outer loop itself is empty (trip = 0) — strict
        // fails, but non-strict passes since a zero trip count is sound
        // for counting (the inner loop is simply never reached).
        assert!(nest.check_trip_counts(&[1], true).is_err());
        assert!(nest.check_trip_counts(&[1], false).is_ok());
        // N = 0: the outer trip count is −1 — even non-strict fails.
        assert!(nest.check_trip_counts(&[0], false).is_err());
    }

    #[test]
    fn certificate_matches_fresh_proof() {
        let s = Space::new(&["i", "j"], &["N"]);
        let shifted = NestSpec::new(
            s.clone(),
            vec![(s.cst(0), s.var("N") - 1), (s.cst(2), s.var("i"))],
        )
        .unwrap();
        for nest in [NestSpec::correlation(), NestSpec::figure6(), shifted] {
            for strict in [false, true] {
                let cert = nest.trip_count_certificate(strict);
                for n in [-3i64, 0, 1, 2, 3, 10, 1000, 1 << 40] {
                    assert_eq!(
                        cert.check(&[n]),
                        nest.prove_trip_counts_at(&[n], strict),
                        "{nest:?} N={n} strict={strict}"
                    );
                }
            }
        }
        // Parameter-free nests: a constant certificate.
        let rect = NestSpec::rectangular(&[3, 4]);
        assert_eq!(
            rect.trip_count_certificate(false).check(&[]),
            rect.prove_trip_counts_at(&[], false)
        );
    }

    #[test]
    fn iterator_intervals() {
        let nest = NestSpec::correlation();
        let s = nest.space().clone();
        // With N = 10 pinned via two assumptions N − 10 ≥ 0 and 10 − N ≥ 0.
        let assum = vec![s.var("N") - 10, -(s.var("N")) + 10];
        let (lo, hi) = nest.iterator_interval(0, &assum).expect("feasible");
        assert_eq!(lo, Some(Rational::ZERO));
        assert_eq!(hi, Some(Rational::from_int(8)));
        let (jlo, jhi) = nest.iterator_interval(1, &assum).expect("feasible");
        assert_eq!(jlo, Some(Rational::from_int(1)));
        assert_eq!(jhi, Some(Rational::from_int(9)));
    }
}
