//! Named variable spaces: iterators first, then parameters.

use crate::affine::Affine;
use std::fmt;
use std::sync::Arc;

/// A variable space shared by all affine forms of a nest: the first
/// `niters` names are loop iterators (outermost first), the rest are
/// integer size parameters.
///
/// `Space` is cheap to clone (the name table is behind an `Arc`).
#[derive(Clone, PartialEq, Eq)]
pub struct Space {
    names: Arc<Vec<String>>,
    niters: usize,
}

impl Space {
    /// Builds a space from iterator and parameter names.
    ///
    /// # Panics
    /// Panics on duplicate or empty names.
    pub fn new(iters: &[&str], params: &[&str]) -> Self {
        let mut names: Vec<String> = Vec::with_capacity(iters.len() + params.len());
        for n in iters.iter().chain(params.iter()) {
            assert!(!n.is_empty(), "empty variable name");
            assert!(
                !names.iter().any(|e| e == n),
                "duplicate variable name {n:?}"
            );
            names.push((*n).to_string());
        }
        Space {
            names: Arc::new(names),
            niters: iters.len(),
        }
    }

    /// Total number of variables (iterators + parameters).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff the space has no variables at all.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of iterators.
    pub fn niters(&self) -> usize {
        self.niters
    }

    /// Number of parameters.
    pub fn nparams(&self) -> usize {
        self.names.len() - self.niters
    }

    /// All variable names, iterators first.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Name of variable `v`.
    pub fn name(&self, v: usize) -> &str {
        &self.names[v]
    }

    /// Index of a variable by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// True iff variable `v` is an iterator.
    pub fn is_iter(&self, v: usize) -> bool {
        v < self.niters
    }

    /// The affine form `x_name`.
    ///
    /// # Panics
    /// Panics if the name is unknown.
    pub fn var(&self, name: &str) -> Affine {
        let v = self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown variable {name:?}"));
        Affine::unit(self.clone(), v)
    }

    /// The constant affine form `c`.
    pub fn cst(&self, c: i64) -> Affine {
        Affine::constant(self.clone(), c)
    }
}

impl fmt::Debug for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Space[iters: {:?}, params: {:?}]",
            &self.names[..self.niters],
            &self.names[self.niters..]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_layout() {
        let s = Space::new(&["i", "j"], &["N", "M"]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.niters(), 2);
        assert_eq!(s.nparams(), 2);
        assert_eq!(s.index_of("N"), Some(2));
        assert_eq!(s.index_of("q"), None);
        assert!(s.is_iter(1));
        assert!(!s.is_iter(2));
        assert_eq!(s.name(3), "M");
    }

    #[test]
    #[should_panic(expected = "duplicate variable name")]
    fn duplicate_names_rejected() {
        let _ = Space::new(&["i", "j"], &["i"]);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn unknown_var_panics() {
        let s = Space::new(&["i"], &[]);
        let _ = s.var("z");
    }

    #[test]
    fn clone_is_shallow_equal() {
        let s = Space::new(&["i"], &["N"]);
        let t = s.clone();
        assert_eq!(s, t);
    }
}
