//! Shape classification of iteration spaces.
//!
//! The paper motivates collapsing for "triangular, tetrahedral,
//! trapezoidal, rhomboidal or parallelepiped" spaces. The classifier here
//! is intentionally coarse — it drives documentation, diagnostics and the
//! experiment harness's labels, not correctness:
//!
//! * [`Shape::Rectangular`] — no bound references an iterator (the only
//!   case OpenMP's `collapse` accepts).
//! * [`Shape::Parallelepiped`] — bounds shift with outer iterators but
//!   every trip count is iterator-independent (skewed bands /
//!   rhomboids): load is already balanced, collapsing only adds
//!   parallelism.
//! * [`Shape::Simplicial`] — at least one trip count varies with an outer
//!   iterator with unit slope (triangles for depth 2, tetrahedra deeper):
//!   the classic imbalance case.
//! * [`Shape::General`] — anything else affine (e.g. trapezoids with
//!   non-unit slopes, multi-iterator bounds).

use crate::nest::NestSpec;

/// Coarse shape taxonomy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Constant bounds everywhere.
    Rectangular,
    /// Iterator-shifted bounds with constant trip counts.
    Parallelepiped,
    /// Unit-slope varying trip counts; `depth` is the nest depth.
    Simplicial {
        /// Total nest depth.
        depth: usize,
    },
    /// Affine but none of the above.
    General,
}

impl Shape {
    /// Human-readable label used in harness output.
    pub fn label(&self) -> String {
        match self {
            Shape::Rectangular => "rectangular".into(),
            Shape::Parallelepiped => "parallelepiped".into(),
            Shape::Simplicial { depth: 2 } => "triangular".into(),
            Shape::Simplicial { depth: 3 } => "tetrahedral".into(),
            Shape::Simplicial { depth } => format!("simplicial(depth {depth})"),
            Shape::General => "general affine".into(),
        }
    }
}

impl NestSpec {
    /// Classifies the nest's iteration-space shape (see [`Shape`]).
    pub fn shape(&self) -> Shape {
        let ni = self.space().niters();
        let mut any_iter_bound = false;
        let mut any_varying_trip = false;
        let mut all_unit_slope = true;
        for k in 0..self.depth() {
            let lo = self.lower(k);
            let hi = self.upper(k);
            let uses_iter = (0..ni).any(|v| lo.coeff(v) != 0) || (0..ni).any(|v| hi.coeff(v) != 0);
            any_iter_bound |= uses_iter;
            // Trip count slope per outer iterator: hi − lo coefficient.
            for v in 0..ni {
                let slope = hi.coeff(v) - lo.coeff(v);
                if slope != 0 {
                    any_varying_trip = true;
                    if slope.abs() != 1 {
                        all_unit_slope = false;
                    }
                }
            }
        }
        if !any_iter_bound {
            Shape::Rectangular
        } else if !any_varying_trip {
            Shape::Parallelepiped
        } else if all_unit_slope {
            Shape::Simplicial {
                depth: self.depth(),
            }
        } else {
            Shape::General
        }
    }

    /// True for every shape except [`Shape::Rectangular`] — the nests the
    /// paper's technique targets and OpenMP `collapse` rejects.
    pub fn is_non_rectangular(&self) -> bool {
        self.shape() != Shape::Rectangular
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;

    #[test]
    fn rectangular() {
        let nest = NestSpec::rectangular(&[4, 5]);
        assert_eq!(nest.shape(), Shape::Rectangular);
        assert!(!nest.is_non_rectangular());
    }

    #[test]
    fn correlation_is_triangular() {
        let nest = NestSpec::correlation();
        assert_eq!(nest.shape(), Shape::Simplicial { depth: 2 });
        assert_eq!(nest.shape().label(), "triangular");
        assert!(nest.is_non_rectangular());
    }

    #[test]
    fn figure6_is_tetrahedral() {
        let nest = NestSpec::figure6();
        assert_eq!(nest.shape(), Shape::Simplicial { depth: 3 });
        assert_eq!(nest.shape().label(), "tetrahedral");
    }

    #[test]
    fn skewed_band_is_parallelepiped() {
        // for i in 0..=9 { for j in i..=i+3 }
        let s = Space::new(&["i", "j"], &[]);
        let nest = NestSpec::new(
            s.clone(),
            vec![(s.cst(0), s.cst(9)), (s.var("i"), s.var("i") + 3)],
        )
        .unwrap();
        assert_eq!(nest.shape(), Shape::Parallelepiped);
        assert_eq!(nest.shape().label(), "parallelepiped");
    }

    #[test]
    fn steep_slope_is_general() {
        // for i in 0..=9 { for j in 0..=2i }
        let s = Space::new(&["i", "j"], &[]);
        let nest = NestSpec::new(
            s.clone(),
            vec![(s.cst(0), s.cst(9)), (s.cst(0), s.var("i") * 2)],
        )
        .unwrap();
        assert_eq!(nest.shape(), Shape::General);
    }
}
