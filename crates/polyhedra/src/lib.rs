#![warn(missing_docs)]
//! Affine loop-nest domains for the collapsing transformation.
//!
//! The paper's loop model (Fig. 5) is a perfect nest of `d` loops where
//! each bound is an **affine** combination of the surrounding iterators
//! and integer size parameters. This crate provides:
//!
//! * [`Space`]/[`Affine`] — named variable spaces and affine forms,
//! * [`NestSpec`] — the symbolic nest (validated: bounds at depth `k` only
//!   use iterators `< k` and parameters),
//! * [`BoundNest`] — a nest with parameters bound to concrete values, with
//!   the cheap odometer operations (`first_point`, `advance`) that the
//!   collapsed executors use between costly recoveries,
//! * a reference lexicographic [`enumerate`](NestSpec::enumerate)
//!   iterator used as the ground truth in tests,
//! * [`fm`] — Fourier–Motzkin elimination over rationals, standing in for
//!   ISL in domain validation (proving trip counts can never be negative
//!   under parameter assumptions),
//! * [`shape`] — shape classification (rectangular, triangular, …)
//!   mirroring the paper's taxonomy.
//!
//! # Examples
//!
//! ```
//! use nrl_polyhedra::{NestSpec, Space};
//!
//! // for i in 0..=N-2 { for j in i+1..=N-1 { ... } } (the paper\'s Fig. 1)
//! let s = Space::new(&["i", "j"], &["N"]);
//! let nest = NestSpec::new(
//!     s.clone(),
//!     vec![(s.cst(0), s.var("N") - 2), (s.var("i") + 1, s.var("N") - 1)],
//! ).unwrap();
//! assert_eq!(nest.count_enumerated(&[5]), 10); // (N-1)N/2 for N = 5
//! let first: Vec<Vec<i64>> = nest.enumerate(&[5]).take(3).collect();
//! assert_eq!(first, vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
//! ```

pub mod affine;
pub mod bound;
pub mod enumerate;
pub mod fm;
pub mod nest;
pub mod shape;
pub mod space;
pub mod validate;

pub use affine::Affine;
pub use bound::BoundNest;
pub use enumerate::Points;
pub use nest::{NestError, NestSpec};
pub use shape::Shape;
pub use space::Space;
pub use validate::{TripCountCertificate, TripProof};
