//! Cooperative cancellation and deadlines for long-running sweeps.
//!
//! A [`RunToken`] is a cheap shared flag the collapsed executors poll
//! once per row segment / chunk (never per point): live checks cost one
//! relaxed atomic load, and a deadline adds one coarse timestamp probe
//! at the same segment granularity. Executors that accept a token
//! return a [`RunOutcome`] describing how the run ended — completed,
//! cancelled, or past its deadline — with the exact number of body
//! invocations that happened before the stop was honoured.
//!
//! The token stops *new* segments from starting; a worker mid-segment
//! finishes that segment first, so a cancelled run halts within one row
//! segment per worker and the reported `points_done` stays exact.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

/// Why a run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// [`RunToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExpired,
}

/// How a token-carrying executor run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every iteration ran.
    Completed,
    /// The run was cancelled; `points_done` body invocations completed
    /// before the executors honoured the stop.
    Cancelled {
        /// Exact number of body invocations that ran.
        points_done: u64,
    },
    /// The deadline passed mid-run; `points_done` body invocations
    /// completed before the executors honoured the stop.
    DeadlineExpired {
        /// Exact number of body invocations that ran.
        points_done: u64,
    },
}

impl RunOutcome {
    /// True iff the run covered its whole domain.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// The exact body-invocation count of a stopped run (`None` for
    /// [`RunOutcome::Completed`], whose count is the domain total).
    pub fn points_done(&self) -> Option<u64> {
        match self {
            RunOutcome::Completed => None,
            RunOutcome::Cancelled { points_done } => Some(*points_done),
            RunOutcome::DeadlineExpired { points_done } => Some(*points_done),
        }
    }
}

struct Inner {
    /// `LIVE` / `CANCELLED` / `DEADLINE`; the first cause to trip wins
    /// (compare-exchange from `LIVE` only).
    state: AtomicU8,
    /// Absolute deadline, probed at segment granularity.
    deadline: Option<Instant>,
}

/// Shared cancellation flag (plus optional deadline) for one or more
/// executor runs. Clones share the same flag; cancelling any clone
/// stops every run polling the token.
#[derive(Clone)]
pub struct RunToken {
    inner: Arc<Inner>,
}

impl RunToken {
    /// A live token with no deadline.
    pub fn new() -> RunToken {
        RunToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: None,
            }),
        }
    }

    /// A token whose runs stop once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> RunToken {
        RunToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Requests cancellation. Idempotent; a deadline that already
    /// tripped keeps its cause (first cause wins).
    pub fn cancel(&self) {
        let _ =
            self.inner
                .state
                .compare_exchange(LIVE, CANCELLED, Ordering::AcqRel, Ordering::Acquire);
    }

    /// The cause already recorded on the token, without probing the
    /// clock. `None` while live.
    pub fn cause(&self) -> Option<StopCause> {
        match self.inner.state.load(Ordering::Acquire) {
            CANCELLED => Some(StopCause::Cancelled),
            DEADLINE => Some(StopCause::DeadlineExpired),
            _ => None,
        }
    }

    /// The hot-path poll the executors run once per row segment: one
    /// relaxed load while live, plus one timestamp probe when a
    /// deadline is set. Trips (and records) the deadline cause on the
    /// first observer.
    #[inline]
    pub fn should_stop(&self) -> Option<StopCause> {
        match self.inner.state.load(Ordering::Relaxed) {
            CANCELLED => return Some(StopCause::Cancelled),
            DEADLINE => return Some(StopCause::DeadlineExpired),
            _ => {}
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                let _ = self.inner.state.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                // Re-read: a concurrent `cancel` may have won the race.
                return self.cause();
            }
        }
        None
    }
}

impl Default for RunToken {
    fn default() -> Self {
        RunToken::new()
    }
}

impl std::fmt::Debug for RunToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunToken")
            .field("cause", &self.cause())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_token_reports_nothing() {
        let t = RunToken::new();
        assert_eq!(t.should_stop(), None);
        assert_eq!(t.cause(), None);
    }

    #[test]
    fn cancel_trips_all_clones() {
        let t = RunToken::new();
        let c = t.clone();
        c.cancel();
        assert_eq!(t.should_stop(), Some(StopCause::Cancelled));
        assert_eq!(t.cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_on_first_poll() {
        let t = RunToken::with_deadline(Duration::ZERO);
        assert_eq!(t.cause(), None, "deadline trips on poll, not creation");
        assert_eq!(t.should_stop(), Some(StopCause::DeadlineExpired));
        assert_eq!(t.cause(), Some(StopCause::DeadlineExpired));
    }

    #[test]
    fn first_cause_wins() {
        let t = RunToken::with_deadline(Duration::ZERO);
        t.cancel();
        assert_eq!(t.should_stop(), Some(StopCause::Cancelled));
    }

    #[test]
    fn outcome_accessors() {
        assert!(RunOutcome::Completed.is_completed());
        assert_eq!(RunOutcome::Completed.points_done(), None);
        assert_eq!(
            RunOutcome::Cancelled { points_done: 7 }.points_done(),
            Some(7)
        );
        assert_eq!(
            RunOutcome::DeadlineExpired { points_done: 9 }.points_done(),
            Some(9)
        );
    }
}
