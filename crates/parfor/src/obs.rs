//! Tracing shim: real `nrl_obs` probes under the `obs-trace` feature,
//! zero-size no-ops otherwise. Call sites stay unconditional; with the
//! feature off the probes compile away entirely (the instrumented
//! crates each carry this same four-line shim rather than a shared
//! macro so the leaf crates keep zero mandatory dependencies).

#[cfg(feature = "obs-trace")]
pub(crate) use nrl_obs::span;

#[cfg(not(feature = "obs-trace"))]
mod noop {
    /// Disabled-probe stand-in; holds nothing, drops to nothing.
    #[derive(Debug)]
    pub(crate) struct Span;

    #[inline(always)]
    pub(crate) fn span(_cat: &'static str, _name: &'static str) -> Option<Span> {
        None
    }
}
#[cfg(not(feature = "obs-trace"))]
pub(crate) use noop::span;
