#![warn(missing_docs)]
//! An OpenMP-like `parallel for` runtime.
//!
//! The paper's evaluation compares three scheduling policies on the same
//! loop: OpenMP `schedule(static)`, `schedule(dynamic)`, and the
//! collapsed loop re-scheduled statically. To reproduce those comparisons
//! faithfully in Rust we implement the OpenMP iteration-distribution
//! policies directly (rather than borrowing rayon's work-stealing, which
//! has no OpenMP counterpart):
//!
//! * [`Schedule::Static`] — one contiguous block per thread (the default
//!   `schedule(static)` of libgomp),
//! * [`Schedule::StaticChunk`] — round-robin chunks (`schedule(static,
//!   chunk)`),
//! * [`Schedule::Dynamic`] — first-come-first-served chunks off an atomic
//!   counter (`schedule(dynamic, chunk)`),
//! * [`Schedule::Guided`] — exponentially shrinking chunks
//!   (`schedule(guided, min)`).
//!
//! [`ThreadPool`] keeps persistent workers parked between loops, so a
//! `parallel_for` costs two synchronization rounds (dispatch + join), not
//! thread spawns — mirroring an OpenMP parallel region. Per-thread
//! iteration counts and busy times are recorded for the load-imbalance
//! study (Fig. 2).
//!
//! # Examples
//!
//! ```
//! use nrl_parfor::{Schedule, ThreadPool};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let sum = AtomicU64::new(0);
//! let schedule: Schedule = "dynamic,8".parse().unwrap(); // OMP_SCHEDULE syntax
//! let report = pool.parallel_for(1000, schedule, &|_tid, start, end| {
//!     sum.fetch_add(end - start, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 1000);
//! assert_eq!(report.total_iterations(), 1000);
//! ```

#[cfg(feature = "fault-inject")]
pub mod faults;
pub(crate) mod obs;
pub mod pool;
pub mod queue;
pub mod schedule;
pub mod scratch;
pub mod stats;
mod sync;
pub mod token;

pub use pool::ThreadPool;
pub use queue::{BoundedQueue, QueueFull};
pub use schedule::{ParseScheduleError, Schedule};
pub use scratch::WorkerLocal;
pub use stats::{ImbalanceReport, ThreadStats};
pub use token::{RunOutcome, RunToken, StopCause};
