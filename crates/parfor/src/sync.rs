//! Minimal std-based stand-ins for the `parking_lot` lock API and
//! `crossbeam`'s `CachePadded` (the build environment has no registry
//! access, and the pool only needs this small surface).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutex whose `lock` returns the guard directly (parking_lot style);
/// poisoning is ignored — a panicked loop body never leaves pool
/// bookkeeping in an invalid state.
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

/// Guard for [`Mutex`]; the inner `Option` lets [`Condvar::wait`]
/// temporarily take ownership for the std wait protocol.
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable with the parking_lot `wait(&mut guard)` shape.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates the condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Pads and aligns a value to 128 bytes to prevent false sharing of the
/// per-thread counters (the `crossbeam::utils::CachePadded` role).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps the value.
    pub fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> CachePadded<T> {
    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn cache_padded_alignment() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
    }
}
