//! Per-thread execution statistics and load-imbalance metrics.
//!
//! The paper's Fig. 2 illustrates how `schedule(static)` on a triangular
//! domain gives thread 0 far more iterations than the last thread; the
//! experiment harness reproduces that figure from these reports.

use std::time::Duration;

/// What one thread did during a `parallel_for`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadStats {
    /// Number of iterations the thread executed.
    pub iterations: u64,
    /// Time the thread spent inside the loop (nanoseconds).
    pub busy_nanos: u64,
}

/// The outcome of one `parallel_for`: per-thread stats plus wall time.
#[derive(Clone, Debug)]
pub struct ImbalanceReport {
    per_thread: Vec<ThreadStats>,
    wall: Duration,
}

impl ImbalanceReport {
    /// Assembles a report.
    pub fn new(per_thread: Vec<ThreadStats>, wall: Duration) -> Self {
        ImbalanceReport { per_thread, wall }
    }

    /// Per-thread statistics, indexed by thread id.
    pub fn per_thread(&self) -> &[ThreadStats] {
        &self.per_thread
    }

    /// Wall-clock duration of the whole loop.
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Total iterations across threads.
    pub fn total_iterations(&self) -> u64 {
        self.per_thread.iter().map(|t| t.iterations).sum()
    }

    /// Ratio of the busiest thread's iteration count to the mean —
    /// 1.0 is perfectly balanced; the static-on-triangle pathology of
    /// Fig. 2 gives ≈ 2·t/(t+1) → ~2 for large thread counts.
    pub fn iteration_imbalance(&self) -> f64 {
        let n = self.per_thread.len() as f64;
        let total: u64 = self.total_iterations();
        if total == 0 {
            return 1.0;
        }
        let max = self
            .per_thread
            .iter()
            .map(|t| t.iterations)
            .max()
            .unwrap_or(0) as f64;
        max / (total as f64 / n)
    }

    /// Ratio of the busiest thread's busy time to the mean busy time.
    pub fn time_imbalance(&self) -> f64 {
        let n = self.per_thread.len() as f64;
        let total: u64 = self.per_thread.iter().map(|t| t.busy_nanos).sum();
        if total == 0 {
            return 1.0;
        }
        let max = self
            .per_thread
            .iter()
            .map(|t| t.busy_nanos)
            .max()
            .unwrap_or(0) as f64;
        max / (total as f64 / n)
    }

    /// A compact textual rendering (one line per thread) used by the
    /// figure harnesses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.total_iterations().max(1);
        for (tid, t) in self.per_thread.iter().enumerate() {
            let pct = 100.0 * t.iterations as f64 / total as f64;
            out.push_str(&format!(
                "thread {tid:>2}: {:>12} iterations ({pct:5.1}%), busy {:>9.3} ms\n",
                t.iterations,
                t.busy_nanos as f64 / 1e6
            ));
        }
        out.push_str(&format!(
            "imbalance: iterations ×{:.3}, time ×{:.3}, wall {:.3} ms\n",
            self.iteration_imbalance(),
            self.time_imbalance(),
            self.wall.as_secs_f64() * 1e3
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(iters: &[u64]) -> ImbalanceReport {
        ImbalanceReport::new(
            iters
                .iter()
                .map(|&n| ThreadStats {
                    iterations: n,
                    busy_nanos: n * 10,
                })
                .collect(),
            Duration::from_millis(5),
        )
    }

    #[test]
    fn balanced_report() {
        let r = report(&[100, 100, 100, 100]);
        assert_eq!(r.total_iterations(), 400);
        assert!((r.iteration_imbalance() - 1.0).abs() < 1e-12);
        assert!((r.time_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangular_static_imbalance() {
        // 5 threads on the N = 100 triangle, like Fig. 2: thread t gets
        // rows [20t, 20t+20) of row-length (99 − i).
        let rows: Vec<u64> = (0..5)
            .map(|t| (20 * t..20 * (t + 1)).map(|i| 99 - i as u64).sum())
            .collect();
        let r = report(&rows);
        // Thread 0 does far more than thread 4.
        assert!(rows[0] > 4 * rows[4]);
        assert!(r.iteration_imbalance() > 1.5);
    }

    #[test]
    fn empty_report_is_balanced() {
        let r = report(&[0, 0]);
        assert_eq!(r.iteration_imbalance(), 1.0);
        assert_eq!(r.time_imbalance(), 1.0);
    }

    #[test]
    fn render_contains_all_threads() {
        let r = report(&[10, 20]);
        let text = r.render();
        assert!(text.contains("thread  0"));
        assert!(text.contains("thread  1"));
        assert!(text.contains("imbalance"));
    }
}
