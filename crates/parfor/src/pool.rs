//! The persistent worker pool and the `parallel_for` entry points.

use crate::schedule::Schedule;
use crate::stats::{ImbalanceReport, ThreadStats};
use crate::sync::{CachePadded, Condvar, Mutex};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Type-erased reference to the loop body shared with the workers for
/// the duration of one `run` call.
///
/// Safety: the pointee lives on the caller's stack; `ThreadPool::run`
/// does not return until every worker has finished executing it, so the
/// reference never dangles while in use.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared execution is the whole point)
// and the pointer's lifetime is bracketed by `run` as described above.
unsafe impl Send for JobPtr {}
unsafe impl Sync for JobPtr {}

struct Slot {
    epoch: u64,
    job: Option<JobPtr>,
}

struct Shared {
    slot: Mutex<Slot>,
    job_cv: Condvar,
    done: AtomicUsize,
    done_mutex: Mutex<()>,
    done_cv: Condvar,
    shutdown: AtomicBool,
    nworkers: usize,
    /// First panic payload caught during the current `run` (worker or
    /// master); re-thrown on the caller thread once every thread has
    /// reached the `done` barrier. The `Mutex` is the poison-immune
    /// shim from [`crate::sync`], so a panicking payload never wedges
    /// the pool.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Fast-path flag mirroring `panic.is_some()`: checked per chunk by
    /// `parallel_for` so surviving workers stop picking up new chunks
    /// once a sibling has panicked.
    panicked: AtomicBool,
    /// Chrome-trace process id for this pool's worker timelines (pid 0
    /// is reserved for caller threads outside any pool).
    #[cfg(feature = "obs-trace")]
    obs_pid: u32,
}

impl Shared {
    /// Records a caught panic payload (first one wins) and raises the
    /// `panicked` flag so in-flight chunk loops wind down early.
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.panicked.store(true, Ordering::Release);
    }
}

/// A fixed-size pool of persistent worker threads implementing OpenMP
/// `parallel for` semantics: the calling thread participates as thread 0
/// and `nthreads − 1` workers are parked between loops.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    nthreads: usize,
}

impl ThreadPool {
    /// Creates a pool that runs loops on `nthreads` threads total
    /// (including the caller). `nthreads = 1` degenerates to serial
    /// execution with no worker threads.
    ///
    /// # Panics
    /// Panics if `nthreads == 0`.
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
            }),
            job_cv: Condvar::new(),
            done: AtomicUsize::new(0),
            done_mutex: Mutex::new(()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            nworkers: nthreads - 1,
            panic: Mutex::new(None),
            panicked: AtomicBool::new(false),
            #[cfg(feature = "obs-trace")]
            obs_pid: nrl_obs::next_pool_id(),
        });
        let mut handles = Vec::with_capacity(nthreads - 1);
        for tid in 1..nthreads {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("nrl-parfor-{tid}"))
                    .spawn(move || worker_loop(shared, tid))
                    .expect("failed to spawn pool worker"),
            );
        }
        ThreadPool {
            shared,
            handles,
            nthreads,
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(n)
    }

    /// Number of threads (including the calling thread).
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Runs `f(tid)` once on every thread of the pool (an OpenMP
    /// `parallel` region) and returns when all invocations finished.
    ///
    /// # Panics
    /// If `f` panics on any thread, the first payload is re-thrown here
    /// on the caller thread — **after** every thread has reached the
    /// completion barrier, so the type-erased job reference never
    /// outlives its pointee and the pool stays fully reusable (the next
    /// `run` starts from a clean epoch; no mutex is poisoned).
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let nworkers = self.handles.len();
        if nworkers == 0 {
            // Serial degenerate case: a panic propagates directly; no
            // shared state is mid-flight, so the pool stays usable.
            let _busy = crate::obs::span("pool", "pool.busy");
            f(0);
            return;
        }
        // SAFETY: see `JobPtr`. We erase the lifetime only for the span
        // of this call; the wait below restores the invariant.
        let job = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        });
        {
            let mut slot = self.shared.slot.lock();
            self.shared.done.store(0, Ordering::Relaxed);
            slot.job = Some(job);
            slot.epoch += 1;
        }
        self.shared.job_cv.notify_all();
        // The master participates as thread 0. Its panic must not
        // unwind past the barrier below: the workers still hold the
        // type-erased reference to `f`'s stack frame.
        {
            let _busy = crate::obs::span("pool", "pool.busy");
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(0))) {
                self.shared.record_panic(payload);
            }
        }
        let mut guard = self.shared.done_mutex.lock();
        while self.shared.done.load(Ordering::Acquire) < nworkers {
            self.shared.done_cv.wait(&mut guard);
        }
        drop(guard);
        // Every thread is parked again: re-throw the run's first panic
        // (if any) on the caller thread, leaving the pool reusable.
        if self.shared.panicked.swap(false, Ordering::AcqRel) {
            let payload = self
                .shared
                .panic
                .lock()
                .take()
                .expect("panicked flag set without a payload");
            resume_unwind(payload);
        }
    }

    /// Distributes iterations `0..n` across the pool under `schedule`.
    ///
    /// `body(tid, start, end)` is invoked once per *chunk* with a
    /// half-open range; the caller iterates inside. Returns an
    /// [`ImbalanceReport`] with per-thread iteration counts and busy
    /// times (the Fig. 2 measurement).
    pub fn parallel_for(
        &self,
        n: u64,
        schedule: Schedule,
        body: &(dyn Fn(usize, u64, u64) + Sync),
    ) -> ImbalanceReport {
        let nthreads = self.nthreads;
        let iter_counts: Vec<CachePadded<AtomicU64>> = (0..nthreads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        let busy_nanos: Vec<CachePadded<AtomicU64>> = (0..nthreads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        let next = AtomicU64::new(0); // shared cursor for dynamic/guided
        let wall_start = Instant::now();

        self.run(&|tid| {
            let t0 = Instant::now();
            let mut local_iters = 0u64;
            match schedule {
                Schedule::Static => {
                    let (s, e) = Schedule::static_block(n, nthreads, tid);
                    if s < e {
                        body(tid, s, e);
                        local_iters += e - s;
                    }
                }
                Schedule::StaticChunk(chunk) => {
                    for (s, e) in Schedule::static_chunks(n, nthreads, tid, chunk) {
                        if self.shared.panicked.load(Ordering::Relaxed) {
                            break; // a sibling panicked: stop taking chunks
                        }
                        body(tid, s, e);
                        local_iters += e - s;
                    }
                }
                Schedule::Dynamic(chunk) => {
                    let chunk = chunk.max(1);
                    loop {
                        if self.shared.panicked.load(Ordering::Relaxed) {
                            break; // a sibling panicked: stop taking chunks
                        }
                        let s = next.fetch_add(chunk, Ordering::Relaxed);
                        if s >= n {
                            break;
                        }
                        let e = (s + chunk).min(n);
                        body(tid, s, e);
                        local_iters += e - s;
                    }
                }
                Schedule::Guided(min) => {
                    let min = min.max(1);
                    loop {
                        if self.shared.panicked.load(Ordering::Relaxed) {
                            break; // a sibling panicked: stop taking chunks
                        }
                        let mut cur = next.load(Ordering::Relaxed);
                        let take = loop {
                            if cur >= n {
                                break 0;
                            }
                            let remaining = n - cur;
                            let take = (remaining / nthreads as u64).max(min).min(remaining);
                            match next.compare_exchange_weak(
                                cur,
                                cur + take,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => break take,
                                Err(actual) => cur = actual,
                            }
                        };
                        if take == 0 {
                            break;
                        }
                        body(tid, cur, cur + take);
                        local_iters += take;
                    }
                }
            }
            iter_counts[tid].store(local_iters, Ordering::Relaxed);
            busy_nanos[tid].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        });

        let wall = wall_start.elapsed();
        let per_thread = (0..nthreads)
            .map(|t| ThreadStats {
                iterations: iter_counts[t].load(Ordering::Relaxed),
                busy_nanos: busy_nanos[t].load(Ordering::Relaxed),
            })
            .collect();
        ImbalanceReport::new(per_thread, wall)
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool({} threads)", self.nthreads)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Shutdown audit (the same barrier-leak shape as the run
        // deadlock): workers only re-check `shutdown` while holding the
        // slot lock, so the store-then-lock-then-notify sequence below
        // cannot race a worker between its epoch check and its wait —
        // every parked worker observes the flag and exits. Workers
        // never exit mid-job: `run`'s barrier completed before we got
        // here, so joins cannot hang on a running body.
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _slot = self.shared.slot.lock();
        }
        self.shared.job_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, tid: usize) {
    // One chrome-trace thread row per worker, grouped under this
    // pool's pid; the gaps between busy spans are the idle time.
    #[cfg(feature = "obs-trace")]
    nrl_obs::set_thread_meta(shared.obs_pid, tid as u32, &format!("nrl-parfor-{tid}"));
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            while slot.epoch == last_epoch && !shared.shutdown.load(Ordering::Acquire) {
                shared.job_cv.wait(&mut slot);
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            last_epoch = slot.epoch;
            slot.job.expect("epoch advanced without a job")
        };
        // SAFETY: `run` keeps the pointee alive until `done` reaches the
        // worker count, which happens only after this call returns.
        let f = unsafe { &*job.0 };
        // A panicking body must not skip the `done` increment below —
        // that is the deadlock: `run` waits for `nworkers` increments
        // and an unwinding worker would never deliver its own. Catch,
        // record, and complete the barrier unconditionally.
        {
            let _busy = crate::obs::span("pool", "pool.busy");
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(tid))) {
                shared.record_panic(payload);
            }
        }
        let prev = shared.done.fetch_add(1, Ordering::Release);
        if prev + 1 == shared.nworkers {
            let _guard = shared.done_mutex.lock();
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_on_all_threads() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        pool.run(&|tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn reusable_across_many_loops() {
        let pool = ThreadPool::new(3);
        let counter = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn single_thread_pool_is_serial() {
        let pool = ThreadPool::new(1);
        let mut touched = false;
        let cell = std::sync::Mutex::new(&mut touched);
        pool.run(&|tid| {
            assert_eq!(tid, 0);
            **cell.lock().unwrap() = true;
        });
        assert!(touched);
    }

    fn coverage_check(schedule: Schedule, n: u64, threads: usize) {
        let pool = ThreadPool::new(threads);
        let seen: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let report = pool.parallel_for(n, schedule, &|_tid, s, e| {
            for i in s..e {
                seen[i as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "iteration {i} executed wrong number of times under {schedule:?}"
            );
        }
        assert_eq!(report.total_iterations(), n);
    }

    #[test]
    fn static_covers_exactly_once() {
        coverage_check(Schedule::Static, 1000, 4);
        coverage_check(Schedule::Static, 3, 8); // more threads than work
        coverage_check(Schedule::Static, 0, 4); // empty loop
    }

    #[test]
    fn static_chunk_covers_exactly_once() {
        coverage_check(Schedule::StaticChunk(7), 1000, 4);
        coverage_check(Schedule::StaticChunk(1), 17, 3);
    }

    #[test]
    fn dynamic_covers_exactly_once() {
        coverage_check(Schedule::Dynamic(4), 1000, 4);
        coverage_check(Schedule::Dynamic(1), 33, 8);
    }

    #[test]
    fn guided_covers_exactly_once() {
        coverage_check(Schedule::Guided(1), 1000, 4);
        coverage_check(Schedule::Guided(16), 500, 3);
    }

    /// Runs `f` on a throwaway thread with a deadline, so a regressed
    /// barrier leak fails the suite instead of hanging it forever.
    fn with_deadline(f: impl FnOnce() + Send + 'static) {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            f();
            let _ = tx.send(());
        });
        rx.recv_timeout(std::time::Duration::from_secs(60))
            .expect("pool deadlocked: the done barrier leaked");
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        with_deadline(|| {
            let pool = ThreadPool::new(4);
            for round in 0..3 {
                let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    pool.run(&|tid| {
                        if tid == 2 {
                            panic!("injected worker panic, round {round}");
                        }
                    });
                }));
                let payload = caught.expect_err("worker panic must reach the caller");
                let msg = payload
                    .downcast_ref::<String>()
                    .expect("payload must be the panic message");
                assert!(msg.contains("injected worker panic"), "got: {msg}");
                // The pool must be fully reusable after the panic.
                let counter = AtomicU64::new(0);
                pool.run(&|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(counter.load(Ordering::Relaxed), 4, "round {round}");
            }
        });
    }

    #[test]
    fn master_panic_waits_for_workers_then_propagates() {
        with_deadline(|| {
            let pool = ThreadPool::new(3);
            let finished = Arc::new(AtomicUsize::new(0));
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let finished = Arc::clone(&finished);
                pool.run(&|tid| {
                    if tid == 0 {
                        panic!("injected master panic");
                    }
                    // Outlive the master's unwind window: if `run`
                    // returned before the barrier, the job reference
                    // would dangle right here.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            }));
            assert!(caught.is_err(), "master panic must propagate");
            assert_eq!(
                finished.load(Ordering::SeqCst),
                2,
                "workers must have completed before run unwound"
            );
            let counter = AtomicU64::new(0);
            pool.run(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 3);
        });
    }

    #[test]
    fn parallel_for_panic_propagates_and_pool_survives() {
        with_deadline(|| {
            let pool = ThreadPool::new(4);
            for schedule in [
                Schedule::Static,
                Schedule::StaticChunk(3),
                Schedule::Dynamic(2),
                Schedule::Guided(1),
            ] {
                let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    pool.parallel_for(1000, schedule, &|_tid, s, _e| {
                        if s >= 500 {
                            panic!("injected chunk panic");
                        }
                    });
                }));
                assert!(caught.is_err(), "{schedule:?}: panic must propagate");
                // Clean follow-up loop covers everything exactly once.
                coverage_check(schedule, 257, 4);
            }
        });
    }

    #[test]
    fn first_panic_payload_wins() {
        with_deadline(|| {
            let pool = ThreadPool::new(4);
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(&|tid| panic!("thread {tid} panicked"));
            }));
            let payload = caught.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<String>().expect("message payload");
            assert!(msg.contains("panicked"), "got: {msg}");
            // Exactly one payload was kept; the slot is clean again.
            assert!(pool.shared.panic.lock().is_none());
            assert!(!pool.shared.panicked.load(Ordering::Relaxed));
        });
    }

    #[test]
    fn static_imbalance_is_visible_in_report() {
        // A triangular workload distributed statically: thread 0 gets the
        // heavy low-i rows. We only check the bookkeeping (counts), the
        // imbalance math lives in stats.rs tests.
        let pool = ThreadPool::new(4);
        let report = pool.parallel_for(100, Schedule::Static, &|_t, s, e| {
            for _ in s..e {
                std::hint::black_box(0u64);
            }
        });
        assert_eq!(report.per_thread().len(), 4);
        assert_eq!(report.total_iterations(), 100);
    }
}
