//! The persistent worker pool and the `parallel_for` entry points.

use crate::schedule::Schedule;
use crate::stats::{ImbalanceReport, ThreadStats};
use crate::sync::{CachePadded, Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Type-erased reference to the loop body shared with the workers for
/// the duration of one `run` call.
///
/// Safety: the pointee lives on the caller's stack; `ThreadPool::run`
/// does not return until every worker has finished executing it, so the
/// reference never dangles while in use.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared execution is the whole point)
// and the pointer's lifetime is bracketed by `run` as described above.
unsafe impl Send for JobPtr {}
unsafe impl Sync for JobPtr {}

struct Slot {
    epoch: u64,
    job: Option<JobPtr>,
}

struct Shared {
    slot: Mutex<Slot>,
    job_cv: Condvar,
    done: AtomicUsize,
    done_mutex: Mutex<()>,
    done_cv: Condvar,
    shutdown: AtomicBool,
    nworkers: usize,
}

/// A fixed-size pool of persistent worker threads implementing OpenMP
/// `parallel for` semantics: the calling thread participates as thread 0
/// and `nthreads − 1` workers are parked between loops.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    nthreads: usize,
}

impl ThreadPool {
    /// Creates a pool that runs loops on `nthreads` threads total
    /// (including the caller). `nthreads = 1` degenerates to serial
    /// execution with no worker threads.
    ///
    /// # Panics
    /// Panics if `nthreads == 0`.
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
            }),
            job_cv: Condvar::new(),
            done: AtomicUsize::new(0),
            done_mutex: Mutex::new(()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            nworkers: nthreads - 1,
        });
        let mut handles = Vec::with_capacity(nthreads - 1);
        for tid in 1..nthreads {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("nrl-parfor-{tid}"))
                    .spawn(move || worker_loop(shared, tid))
                    .expect("failed to spawn pool worker"),
            );
        }
        ThreadPool {
            shared,
            handles,
            nthreads,
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(n)
    }

    /// Number of threads (including the calling thread).
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Runs `f(tid)` once on every thread of the pool (an OpenMP
    /// `parallel` region) and returns when all invocations finished.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let nworkers = self.handles.len();
        if nworkers == 0 {
            f(0);
            return;
        }
        // SAFETY: see `JobPtr`. We erase the lifetime only for the span
        // of this call; the wait below restores the invariant.
        let job = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        });
        {
            let mut slot = self.shared.slot.lock();
            self.shared.done.store(0, Ordering::Relaxed);
            slot.job = Some(job);
            slot.epoch += 1;
        }
        self.shared.job_cv.notify_all();
        f(0); // the master participates as thread 0
        let mut guard = self.shared.done_mutex.lock();
        while self.shared.done.load(Ordering::Acquire) < nworkers {
            self.shared.done_cv.wait(&mut guard);
        }
    }

    /// Distributes iterations `0..n` across the pool under `schedule`.
    ///
    /// `body(tid, start, end)` is invoked once per *chunk* with a
    /// half-open range; the caller iterates inside. Returns an
    /// [`ImbalanceReport`] with per-thread iteration counts and busy
    /// times (the Fig. 2 measurement).
    pub fn parallel_for(
        &self,
        n: u64,
        schedule: Schedule,
        body: &(dyn Fn(usize, u64, u64) + Sync),
    ) -> ImbalanceReport {
        let nthreads = self.nthreads;
        let iter_counts: Vec<CachePadded<AtomicU64>> = (0..nthreads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        let busy_nanos: Vec<CachePadded<AtomicU64>> = (0..nthreads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        let next = AtomicU64::new(0); // shared cursor for dynamic/guided
        let wall_start = Instant::now();

        self.run(&|tid| {
            let t0 = Instant::now();
            let mut local_iters = 0u64;
            match schedule {
                Schedule::Static => {
                    let (s, e) = Schedule::static_block(n, nthreads, tid);
                    if s < e {
                        body(tid, s, e);
                        local_iters += e - s;
                    }
                }
                Schedule::StaticChunk(chunk) => {
                    for (s, e) in Schedule::static_chunks(n, nthreads, tid, chunk) {
                        body(tid, s, e);
                        local_iters += e - s;
                    }
                }
                Schedule::Dynamic(chunk) => {
                    let chunk = chunk.max(1);
                    loop {
                        let s = next.fetch_add(chunk, Ordering::Relaxed);
                        if s >= n {
                            break;
                        }
                        let e = (s + chunk).min(n);
                        body(tid, s, e);
                        local_iters += e - s;
                    }
                }
                Schedule::Guided(min) => {
                    let min = min.max(1);
                    loop {
                        let mut cur = next.load(Ordering::Relaxed);
                        let take = loop {
                            if cur >= n {
                                break 0;
                            }
                            let remaining = n - cur;
                            let take = (remaining / nthreads as u64).max(min).min(remaining);
                            match next.compare_exchange_weak(
                                cur,
                                cur + take,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => break take,
                                Err(actual) => cur = actual,
                            }
                        };
                        if take == 0 {
                            break;
                        }
                        body(tid, cur, cur + take);
                        local_iters += take;
                    }
                }
            }
            iter_counts[tid].store(local_iters, Ordering::Relaxed);
            busy_nanos[tid].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        });

        let wall = wall_start.elapsed();
        let per_thread = (0..nthreads)
            .map(|t| ThreadStats {
                iterations: iter_counts[t].load(Ordering::Relaxed),
                busy_nanos: busy_nanos[t].load(Ordering::Relaxed),
            })
            .collect();
        ImbalanceReport::new(per_thread, wall)
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool({} threads)", self.nthreads)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _slot = self.shared.slot.lock();
        }
        self.shared.job_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, tid: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            while slot.epoch == last_epoch && !shared.shutdown.load(Ordering::Acquire) {
                shared.job_cv.wait(&mut slot);
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            last_epoch = slot.epoch;
            slot.job.expect("epoch advanced without a job")
        };
        // SAFETY: `run` keeps the pointee alive until `done` reaches the
        // worker count, which happens only after this call returns.
        let f = unsafe { &*job.0 };
        f(tid);
        let prev = shared.done.fetch_add(1, Ordering::Release);
        if prev + 1 == shared.nworkers {
            let _guard = shared.done_mutex.lock();
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_on_all_threads() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        pool.run(&|tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn reusable_across_many_loops() {
        let pool = ThreadPool::new(3);
        let counter = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn single_thread_pool_is_serial() {
        let pool = ThreadPool::new(1);
        let mut touched = false;
        let cell = std::sync::Mutex::new(&mut touched);
        pool.run(&|tid| {
            assert_eq!(tid, 0);
            **cell.lock().unwrap() = true;
        });
        assert!(touched);
    }

    fn coverage_check(schedule: Schedule, n: u64, threads: usize) {
        let pool = ThreadPool::new(threads);
        let seen: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let report = pool.parallel_for(n, schedule, &|_tid, s, e| {
            for i in s..e {
                seen[i as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "iteration {i} executed wrong number of times under {schedule:?}"
            );
        }
        assert_eq!(report.total_iterations(), n);
    }

    #[test]
    fn static_covers_exactly_once() {
        coverage_check(Schedule::Static, 1000, 4);
        coverage_check(Schedule::Static, 3, 8); // more threads than work
        coverage_check(Schedule::Static, 0, 4); // empty loop
    }

    #[test]
    fn static_chunk_covers_exactly_once() {
        coverage_check(Schedule::StaticChunk(7), 1000, 4);
        coverage_check(Schedule::StaticChunk(1), 17, 3);
    }

    #[test]
    fn dynamic_covers_exactly_once() {
        coverage_check(Schedule::Dynamic(4), 1000, 4);
        coverage_check(Schedule::Dynamic(1), 33, 8);
    }

    #[test]
    fn guided_covers_exactly_once() {
        coverage_check(Schedule::Guided(1), 1000, 4);
        coverage_check(Schedule::Guided(16), 500, 3);
    }

    #[test]
    fn static_imbalance_is_visible_in_report() {
        // A triangular workload distributed statically: thread 0 gets the
        // heavy low-i rows. We only check the bookkeeping (counts), the
        // imbalance math lives in stats.rs tests.
        let pool = ThreadPool::new(4);
        let report = pool.parallel_for(100, Schedule::Static, &|_t, s, e| {
            for _ in s..e {
                std::hint::black_box(0u64);
            }
        });
        assert_eq!(report.per_thread().len(), 4);
        assert_eq!(report.total_iterations(), 100);
    }
}
