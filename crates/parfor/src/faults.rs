//! Deterministic fault injection for the containment tests (compiled
//! only under the `fault-inject` feature; never in production builds).
//!
//! A test builds a [`FaultPlan`] — panic at the Nth body call (globally
//! or on a specific thread), delay a chosen worker, force the checked
//! recovery path to report overflow — and [`arm`](FaultPlan::arm)s it.
//! Arming takes a process-wide test lock, so concurrent `#[test]`s
//! serialize instead of observing each other's faults; dropping the
//! returned [`ArmedGuard`] disarms everything.
//!
//! Instrumentation is cooperative: test bodies call
//! [`on_body_call`]`(tid)` once per invocation. The only production
//! hook is [`forced_overflow`], consulted by `nrl_core`'s checked
//! rank-target multiply (also feature-gated there), so the overflow
//! `expect` path can be driven without a 10¹⁸-point domain.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Highest thread id the per-thread call counters track.
pub const MAX_TIDS: usize = 64;

/// `usize` sentinel for "no thread targeted".
const NO_TID: usize = usize::MAX;

static TEST_LOCK: Mutex<()> = Mutex::new(());

static PANIC_TID: AtomicUsize = AtomicUsize::new(NO_TID);
static PANIC_NTH: AtomicU64 = AtomicU64::new(0);
static PANIC_GLOBAL_NTH: AtomicU64 = AtomicU64::new(0);
static DELAY_TID: AtomicUsize = AtomicUsize::new(NO_TID);
static DELAY_NTH: AtomicU64 = AtomicU64::new(0);
static DELAY_MICROS: AtomicU64 = AtomicU64::new(0);
static FORCE_OVERFLOW: AtomicBool = AtomicBool::new(false);

static GLOBAL_CALLS: AtomicU64 = AtomicU64::new(0);
static TID_CALLS: [AtomicU64; MAX_TIDS] = [const { AtomicU64::new(0) }; MAX_TIDS];

/// A fault configuration to arm for one test section.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    panic_on: Option<(usize, u64)>,
    panic_at: Option<u64>,
    delay_on: Option<(usize, u64, Duration)>,
    force_overflow: bool,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Panic inside the `nth` (1-based) body call executed by thread
    /// `tid`. Deterministic only under schedules that give `tid` a
    /// fixed share (e.g. `Schedule::Static`).
    pub fn panic_on(mut self, tid: usize, nth: u64) -> FaultPlan {
        assert!(tid < MAX_TIDS && nth >= 1);
        self.panic_on = Some((tid, nth));
        self
    }

    /// Panic inside the `nth` (1-based) body call process-wide,
    /// whichever thread executes it — deterministic under every
    /// schedule as long as the domain has ≥ `nth` points.
    pub fn panic_at(mut self, nth: u64) -> FaultPlan {
        assert!(nth >= 1);
        self.panic_at = Some(nth);
        self
    }

    /// Sleep `delay` inside thread `tid`'s `nth` body call (and every
    /// call after it), simulating a straggler worker.
    pub fn delay_on(mut self, tid: usize, nth: u64, delay: Duration) -> FaultPlan {
        assert!(tid < MAX_TIDS && nth >= 1);
        self.delay_on = Some((tid, nth, delay));
        self
    }

    /// Make the checked recovery path report rank-target overflow on
    /// its next multiply (see [`forced_overflow`]).
    pub fn force_overflow(mut self) -> FaultPlan {
        self.force_overflow = true;
        self
    }

    /// Arms the plan, resetting all call counters. Holds the global
    /// fault lock until the returned guard drops (tests injecting
    /// faults serialize on it).
    pub fn arm(self) -> ArmedGuard {
        let lock = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        GLOBAL_CALLS.store(0, Ordering::Relaxed);
        for c in &TID_CALLS {
            c.store(0, Ordering::Relaxed);
        }
        let (ptid, pnth) = self.panic_on.unwrap_or((NO_TID, 0));
        PANIC_TID.store(ptid, Ordering::Relaxed);
        PANIC_NTH.store(pnth, Ordering::Relaxed);
        PANIC_GLOBAL_NTH.store(self.panic_at.unwrap_or(0), Ordering::Relaxed);
        let (dtid, dnth, ddur) = self.delay_on.unwrap_or((NO_TID, 0, Duration::ZERO));
        DELAY_TID.store(dtid, Ordering::Relaxed);
        DELAY_NTH.store(dnth, Ordering::Relaxed);
        DELAY_MICROS.store(ddur.as_micros() as u64, Ordering::Relaxed);
        FORCE_OVERFLOW.store(self.force_overflow, Ordering::Release);
        ArmedGuard { _lock: lock }
    }
}

/// Keeps the armed [`FaultPlan`] active; dropping it disarms every
/// fault and releases the global fault lock.
pub struct ArmedGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        PANIC_TID.store(NO_TID, Ordering::Relaxed);
        PANIC_NTH.store(0, Ordering::Relaxed);
        PANIC_GLOBAL_NTH.store(0, Ordering::Relaxed);
        DELAY_TID.store(NO_TID, Ordering::Relaxed);
        DELAY_NTH.store(0, Ordering::Relaxed);
        DELAY_MICROS.store(0, Ordering::Relaxed);
        FORCE_OVERFLOW.store(false, Ordering::Release);
    }
}

/// The payload message injected panics carry (tests downcast and match
/// on it to distinguish injected faults from real bugs).
pub const INJECTED_PANIC: &str = "injected fault: body panic";

/// Cooperative instrumentation point: test bodies call this once per
/// body invocation, with the executing thread id.
#[inline]
pub fn on_body_call(tid: usize) {
    let global = GLOBAL_CALLS.fetch_add(1, Ordering::Relaxed) + 1;
    let per_tid = if tid < MAX_TIDS {
        TID_CALLS[tid].fetch_add(1, Ordering::Relaxed) + 1
    } else {
        0
    };
    let dnth = DELAY_NTH.load(Ordering::Relaxed);
    if dnth != 0 && DELAY_TID.load(Ordering::Relaxed) == tid && per_tid >= dnth {
        std::thread::sleep(Duration::from_micros(DELAY_MICROS.load(Ordering::Relaxed)));
    }
    let gnth = PANIC_GLOBAL_NTH.load(Ordering::Relaxed);
    if gnth != 0 && global == gnth {
        panic!("{INJECTED_PANIC}");
    }
    let pnth = PANIC_NTH.load(Ordering::Relaxed);
    if pnth != 0 && PANIC_TID.load(Ordering::Relaxed) == tid && per_tid == pnth {
        panic!("{INJECTED_PANIC}");
    }
}

/// Total instrumented body calls since the last [`FaultPlan::arm`].
pub fn body_calls() -> u64 {
    GLOBAL_CALLS.load(Ordering::Relaxed)
}

/// True while an armed plan forces the checked recovery multiply to
/// report overflow. Consulted by `nrl_core::unrank`'s rank-target
/// helper under its own `fault-inject` gate.
#[inline]
pub fn forced_overflow() -> bool {
    FORCE_OVERFLOW.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeted_panic_fires_on_exact_call() {
        let _guard = FaultPlan::new().panic_on(1, 3).arm();
        on_body_call(1);
        on_body_call(1);
        on_body_call(0); // other thread: never trips
        let err = std::panic::catch_unwind(|| on_body_call(1));
        assert!(err.is_err(), "third call on tid 1 must panic");
    }

    #[test]
    fn global_panic_fires_regardless_of_tid() {
        let _guard = FaultPlan::new().panic_at(2).arm();
        on_body_call(3);
        let err = std::panic::catch_unwind(|| on_body_call(0));
        assert!(err.is_err(), "second call overall must panic");
        assert_eq!(body_calls(), 2);
    }

    #[test]
    fn disarm_on_drop() {
        {
            let _guard = FaultPlan::new().panic_at(1).force_overflow().arm();
            assert!(forced_overflow());
        }
        assert!(!forced_overflow());
        on_body_call(0); // would panic if still armed
    }
}
