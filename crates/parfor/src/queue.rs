//! A bounded, multi-producer FIFO handoff queue.
//!
//! The serving layer admits requests on caller threads and executes
//! them on the pool; this queue is the handoff point between the two.
//! Its semantics are chosen for *backpressure*, not buffering comfort:
//! [`BoundedQueue::try_push`] never blocks — a full queue rejects the
//! item immediately (returning it to the caller), so admission control
//! can turn the rejection into an explicit `queue_full` response
//! instead of letting latency pile up invisibly. Consumers block in
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed
//! and drained.
//!
//! Built on the same poison-immune `Mutex`/`Condvar` shims as the
//! pool, so a panicking producer or consumer never wedges the queue.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// Error from [`BoundedQueue::try_push`]: the queue was at capacity (or
/// closed) and the item was not enqueued. Carries the item back so the
/// caller can report or retry without cloning.
#[derive(Debug)]
pub struct QueueFull<T>(pub T);

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue with non-blocking producers and blocking
/// consumers (see the [module docs](self)).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (racy by nature; a metric, not a guard).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether the queue is currently empty (racy, like [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` if there is room, **without blocking**: a full
    /// or closed queue returns the item back inside [`QueueFull`] so
    /// the producer can surface backpressure to its own caller.
    pub fn try_push(&self, item: T) -> Result<(), QueueFull<T>> {
        {
            let mut state = self.state.lock();
            if state.closed || state.items.len() >= self.capacity {
                return Err(QueueFull(item));
            }
            state.items.push_back(item);
        }
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue has been [closed](Self::close)
    /// **and** drained — already-enqueued items are always delivered.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            self.cv.wait(&mut state);
        }
    }

    /// Closes the queue: further pushes are rejected, and consumers
    /// drain the remaining items before [`Self::pop`] returns `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let QueueFull(rejected) = q.try_push(3).unwrap_err();
        assert_eq!(rejected, 3, "the rejected item comes back");
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(q.try_push(8).is_err());
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed+empty stays terminal");
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..10 {
            // Spin until there's room: exercises the wake-on-pop path.
            let mut item = i;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(QueueFull(back)) => {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(BoundedQueue::new(4));
        let nproducers = 4usize;
        let per = 50usize;
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        std::thread::scope(|scope| {
            for p in 0..nproducers {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..per {
                        let mut item = (p, i);
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(QueueFull(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
        });
        q.close();
        let mut got = consumer.join().unwrap();
        assert_eq!(got.len(), nproducers * per);
        // Per-producer FIFO: each producer's items arrive in order.
        for p in 0..nproducers {
            let seq: Vec<usize> = got
                .iter()
                .filter(|(q, _)| *q == p)
                .map(|(_, i)| *i)
                .collect();
            assert_eq!(seq, (0..per).collect::<Vec<_>>(), "producer {p}");
        }
        got.sort();
    }
}
