//! Per-worker scratch slots.
//!
//! Dynamic and guided schedules hand a worker many chunks per loop, but
//! the `parallel_for` body closure is `Fn` — it cannot own mutable
//! per-worker state, so anything a worker wants to carry *across* chunk
//! boundaries (an unranker's specialization cache, a tuple buffer, a
//! statistics accumulator) previously had to hide behind a
//! `Mutex<T>` per thread, paying an uncontended-but-real lock per chunk
//! and defeating inlining of the cached fast path.
//!
//! [`WorkerLocal`] is the lock-free replacement: one cache-padded slot
//! per pool thread, indexed by the `tid` the pool already passes to
//! every body. Exclusive access is enforced dynamically with a per-slot
//! borrow flag (a single relaxed atomic swap — no mutex, no poisoning),
//! which makes the API safe even if a caller passes the wrong `tid`:
//! misuse panics instead of racing.
//!
//! Every collapsed executor in `nrl_core` runs on this design: the
//! chunked modes carry their unranker caches and batched-mode
//! anchor/tuple buffers here, the warp simulator its per-thread lane
//! anchors, and the partial-collapse driver its full-tuple walk
//! buffers — one scratch discipline, no per-chunk allocation.

use crate::sync::CachePadded;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

struct Slot<T> {
    borrowed: AtomicBool,
    value: UnsafeCell<T>,
}

/// A fixed array of per-worker values: slot `tid` belongs to pool
/// thread `tid` for the duration of a loop, and survives across chunks
/// *and* across successive `parallel_for` calls on the same pool.
///
/// See the [module docs](self) for the motivation.
///
/// # Example
///
/// ```
/// use nrl_parfor::{Schedule, ThreadPool, WorkerLocal};
///
/// let pool = ThreadPool::new(4);
/// // One persistent counter per worker — no locks in the loop body.
/// let scratch = WorkerLocal::new(pool.nthreads(), |_tid| 0u64);
/// pool.parallel_for(1000, Schedule::Dynamic(16), &|tid, s, e| {
///     scratch.with(tid, |count| *count += e - s);
/// });
/// assert_eq!(scratch.into_iter().sum::<u64>(), 1000);
/// ```
pub struct WorkerLocal<T> {
    slots: Vec<CachePadded<Slot<T>>>,
}

// SAFETY: a slot's value is only reachable through `with`, which
// enforces exclusive access via the borrow flag; distinct slots are
// independent. `T: Send` because values are created on the constructing
// thread and used on workers.
unsafe impl<T: Send> Sync for WorkerLocal<T> {}

impl<T> WorkerLocal<T> {
    /// Creates `n` slots, initializing slot `tid` with `init(tid)`.
    pub fn new(n: usize, init: impl FnMut(usize) -> T) -> Self {
        let mut init = init;
        WorkerLocal {
            slots: (0..n)
                .map(|tid| {
                    CachePadded::new(Slot {
                        borrowed: AtomicBool::new(false),
                        value: UnsafeCell::new(init(tid)),
                    })
                })
                .collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates the slots mutably in `tid` order — for post-loop
    /// inspection or reuse across loops without consuming the scratch.
    /// Exclusive access comes from `&mut self` (the loop has joined),
    /// so no borrow flags are touched.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|padded| {
            debug_assert!(!*padded.borrowed.get_mut(), "slot still borrowed");
            padded.value.get_mut()
        })
    }

    /// Runs `f` with exclusive mutable access to worker `tid`'s slot.
    ///
    /// # Panics
    /// Panics if `tid` is out of range or the slot is already borrowed
    /// (two threads claiming the same `tid`, or a re-entrant call).
    #[inline]
    pub fn with<R>(&self, tid: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let slot = &self.slots[tid];
        assert!(
            !slot.borrowed.swap(true, Ordering::Acquire),
            "WorkerLocal slot {tid} is already borrowed"
        );
        // Release the flag even if `f` panics, so a caught panic (e.g.
        // in tests) cannot wedge the slot.
        struct Reset<'a>(&'a AtomicBool);
        impl Drop for Reset<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        let _reset = Reset(&slot.borrowed);
        // SAFETY: the borrow flag guarantees no other reference to this
        // slot's value exists for the duration of `f`.
        f(unsafe { &mut *slot.value.get() })
    }
}

impl<T> IntoIterator for WorkerLocal<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    /// Consumes the slots in `tid` order (for post-loop reduction).
    fn into_iter(self) -> Self::IntoIter {
        self.slots
            .into_iter()
            .map(|padded| padded.into_inner().value.into_inner())
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use crate::schedule::Schedule;

    #[test]
    fn slots_accumulate_across_chunks_and_loops() {
        let pool = ThreadPool::new(3);
        let scratch = WorkerLocal::new(pool.nthreads(), |_| 0u64);
        for _ in 0..2 {
            pool.parallel_for(500, Schedule::Dynamic(7), &|tid, s, e| {
                scratch.with(tid, |acc| *acc += e - s);
            });
        }
        let total: u64 = scratch.into_iter().sum();
        assert_eq!(total, 1000, "state must persist across chunks and loops");
    }

    #[test]
    fn init_sees_tid() {
        let scratch = WorkerLocal::new(4, |tid| tid * 10);
        for tid in 0..4 {
            assert_eq!(scratch.with(tid, |v| *v), tid * 10);
        }
        assert_eq!(scratch.len(), 4);
        assert!(!scratch.is_empty());
    }

    #[test]
    fn reentrant_borrow_panics() {
        let scratch = WorkerLocal::new(1, |_| 0u8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scratch.with(0, |_| scratch.with(0, |_| {}));
        }));
        assert!(result.is_err(), "re-entrant borrow must be rejected");
        // The flag was reset by the panic guard: the slot is usable.
        scratch.with(0, |v| *v = 7);
        assert_eq!(scratch.with(0, |v| *v), 7);
    }

    #[test]
    fn iter_mut_visits_slots_in_tid_order() {
        let pool = ThreadPool::new(3);
        let mut scratch = WorkerLocal::new(pool.nthreads(), |tid| tid as u64);
        pool.parallel_for(300, Schedule::Static, &|tid, s, e| {
            scratch.with(tid, |acc| *acc += e - s);
        });
        // Post-loop mutable sweep without consuming: reset for reuse.
        let mut seen = 0u64;
        for slot in scratch.iter_mut() {
            seen += *slot;
            *slot = 0;
        }
        assert!(seen >= 300, "every iteration counted somewhere: {seen}");
        assert_eq!(scratch.into_iter().sum::<u64>(), 0, "slots were reset");
    }

    #[test]
    fn non_copy_values_are_supported() {
        let scratch = WorkerLocal::new(2, |tid| vec![tid]);
        scratch.with(1, |v| v.push(99));
        let collected: Vec<Vec<usize>> = scratch.into_iter().collect();
        assert_eq!(collected, vec![vec![0], vec![1, 99]]);
    }
}
