//! OpenMP-style loop schedules and their chunk generators.

use std::fmt;
use std::str::FromStr;

/// An OpenMP-style schedule for distributing the iterations `0..n` of a
/// (collapsed or outer) parallel loop across `t` threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// `schedule(static)`: split into `t` near-equal contiguous blocks,
    /// one per thread. Remainder iterations go to the lowest-id threads
    /// (libgomp behaviour).
    Static,
    /// `schedule(static, chunk)`: fixed-size chunks assigned round-robin
    /// (thread `k` gets chunks `k, k+t, k+2t, …`).
    StaticChunk(u64),
    /// `schedule(dynamic, chunk)`: chunks handed to whichever thread asks
    /// first (an atomic fetch-add at run time).
    Dynamic(u64),
    /// `schedule(guided, min)`: the next idle thread takes
    /// `max(remaining / t, min)` iterations.
    Guided(u64),
}

impl Schedule {
    /// The contiguous block `[start, end)` of thread `tid` under
    /// `Static` with `n` iterations and `nthreads` threads.
    pub fn static_block(n: u64, nthreads: usize, tid: usize) -> (u64, u64) {
        let t = nthreads as u64;
        let base = n / t;
        let rem = n % t;
        let tid = tid as u64;
        let start = tid * base + tid.min(rem);
        let len = base + u64::from(tid < rem);
        (start, start + len)
    }

    /// The sequence of round-robin chunks of thread `tid` under
    /// `StaticChunk(chunk)`: returns an iterator of `[start, end)` pairs.
    pub fn static_chunks(
        n: u64,
        nthreads: usize,
        tid: usize,
        chunk: u64,
    ) -> impl Iterator<Item = (u64, u64)> {
        let chunk = chunk.max(1);
        let stride = chunk * nthreads as u64;
        let first = tid as u64 * chunk;
        (0..)
            .map(move |k| first + k * stride)
            .take_while(move |&s| s < n)
            .map(move |s| (s, (s + chunk).min(n)))
    }

    /// Human-readable label matching OpenMP clause syntax.
    pub fn label(&self) -> String {
        match self {
            Schedule::Static => "static".into(),
            Schedule::StaticChunk(c) => format!("static,{c}"),
            Schedule::Dynamic(c) => format!("dynamic,{c}"),
            Schedule::Guided(m) => format!("guided,{m}"),
        }
    }

    /// Reads the schedule from the `NRL_SCHEDULE` environment variable
    /// (same syntax as OpenMP's `OMP_SCHEDULE`, e.g. `dynamic,64`),
    /// falling back to `default` when unset or unparsable.
    pub fn from_env(default: Schedule) -> Schedule {
        match std::env::var("NRL_SCHEDULE") {
            Ok(s) => s.parse().unwrap_or(default),
            Err(_) => default,
        }
    }
}

/// Error from parsing an OpenMP-style schedule string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError(String);

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid schedule {:?}: expected KIND[,CHUNK] with kind static|dynamic|guided",
            self.0
        )
    }
}

impl std::error::Error for ParseScheduleError {}

impl FromStr for Schedule {
    type Err = ParseScheduleError;

    /// Parses OpenMP `OMP_SCHEDULE` syntax: `kind[,chunk]` with kind
    /// `static`, `dynamic` or `guided` (case-insensitive, spaces
    /// tolerated). `static` without a chunk is block scheduling;
    /// `dynamic`/`guided` default their chunk/min to 1, as OpenMP does.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseScheduleError(s.to_string());
        let mut parts = s.split(',');
        let kind = parts.next().ok_or_else(err)?.trim().to_ascii_lowercase();
        let chunk = match parts.next() {
            Some(c) => Some(c.trim().parse::<u64>().map_err(|_| err())?),
            None => None,
        };
        if parts.next().is_some() {
            return Err(err());
        }
        if chunk == Some(0) {
            return Err(err());
        }
        match (kind.as_str(), chunk) {
            ("static", None) => Ok(Schedule::Static),
            ("static", Some(c)) => Ok(Schedule::StaticChunk(c)),
            ("dynamic", c) => Ok(Schedule::Dynamic(c.unwrap_or(1))),
            ("guided", c) => Ok(Schedule::Guided(c.unwrap_or(1))),
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_blocks_partition_exactly() {
        for n in [0u64, 1, 7, 100, 101, 12345] {
            for t in [1usize, 2, 3, 5, 12] {
                let mut covered = 0u64;
                let mut prev_end = 0u64;
                for tid in 0..t {
                    let (s, e) = Schedule::static_block(n, t, tid);
                    assert!(s <= e);
                    assert_eq!(s, prev_end, "blocks must be contiguous");
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, n, "n={n} t={t}");
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn static_blocks_are_balanced() {
        let (s0, e0) = Schedule::static_block(10, 3, 0);
        let (s1, e1) = Schedule::static_block(10, 3, 1);
        let (s2, e2) = Schedule::static_block(10, 3, 2);
        assert_eq!((e0 - s0, e1 - s1, e2 - s2), (4, 3, 3));
    }

    #[test]
    fn static_chunks_cover_without_overlap() {
        for n in [0u64, 1, 10, 97] {
            for t in [1usize, 2, 4] {
                for chunk in [1u64, 3, 8] {
                    let mut seen = vec![false; n as usize];
                    for tid in 0..t {
                        for (s, e) in Schedule::static_chunks(n, t, tid, chunk) {
                            for i in s..e {
                                assert!(!seen[i as usize], "overlap at {i}");
                                seen[i as usize] = true;
                            }
                        }
                    }
                    assert!(seen.iter().all(|&b| b), "n={n} t={t} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn round_robin_order() {
        // 2 threads, chunk 2, n = 10: t0 gets [0,2) [4,6) [8,10); t1 [2,4) [6,8).
        let t0: Vec<_> = Schedule::static_chunks(10, 2, 0, 2).collect();
        let t1: Vec<_> = Schedule::static_chunks(10, 2, 1, 2).collect();
        assert_eq!(t0, vec![(0, 2), (4, 6), (8, 10)]);
        assert_eq!(t1, vec![(2, 4), (6, 8)]);
    }

    #[test]
    fn labels() {
        assert_eq!(Schedule::Static.label(), "static");
        assert_eq!(Schedule::StaticChunk(16).label(), "static,16");
        assert_eq!(Schedule::Dynamic(4).label(), "dynamic,4");
        assert_eq!(Schedule::Guided(1).label(), "guided,1");
    }

    #[test]
    fn zero_chunk_is_clamped() {
        let chunks: Vec<_> = Schedule::static_chunks(3, 1, 0, 0).collect();
        assert_eq!(chunks, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn parse_openmp_syntax() {
        assert_eq!("static".parse(), Ok(Schedule::Static));
        assert_eq!("static,256".parse(), Ok(Schedule::StaticChunk(256)));
        assert_eq!("dynamic".parse(), Ok(Schedule::Dynamic(1)));
        assert_eq!("dynamic, 8".parse(), Ok(Schedule::Dynamic(8)));
        assert_eq!("GUIDED,4".parse(), Ok(Schedule::Guided(4)));
        assert_eq!(" guided ".parse(), Ok(Schedule::Guided(1)));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("auto".parse::<Schedule>().is_err());
        assert!("static,".parse::<Schedule>().is_err());
        assert!("static,0".parse::<Schedule>().is_err());
        assert!("static,8,9".parse::<Schedule>().is_err());
        assert!("static,-3".parse::<Schedule>().is_err());
        assert!("".parse::<Schedule>().is_err());
    }

    #[test]
    fn parse_roundtrips_labels() {
        for s in [
            Schedule::Static,
            Schedule::StaticChunk(16),
            Schedule::Dynamic(4),
            Schedule::Guided(2),
        ] {
            assert_eq!(s.label().parse(), Ok(s));
        }
    }

    #[test]
    fn from_env_falls_back() {
        // Unset (or previously set by another test — use a value that
        // cannot parse) → the default survives.
        std::env::remove_var("NRL_SCHEDULE");
        assert_eq!(
            Schedule::from_env(Schedule::Dynamic(7)),
            Schedule::Dynamic(7)
        );
    }
}
