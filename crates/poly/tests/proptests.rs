//! Property-based tests for the polynomial ring and discrete summation.

use nrl_poly::{IntPoly, Monomial, Poly};
use nrl_rational::Rational;
use proptest::prelude::*;

const NVARS: usize = 3;

/// Random polynomial over 3 variables, small degrees and coefficients.
fn arb_poly() -> impl Strategy<Value = Poly> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u32..4, NVARS),
            -20i128..20,
            1i128..6,
        ),
        0..8,
    )
    .prop_map(|terms| {
        Poly::from_terms(
            NVARS,
            terms
                .into_iter()
                .map(|(exps, n, d)| (Monomial(exps), Rational::new(n, d))),
        )
    })
}

fn arb_point() -> impl Strategy<Value = Vec<Rational>> {
    proptest::collection::vec(
        (-9i128..9, 1i128..4).prop_map(|(n, d)| Rational::new(n, d)),
        NVARS,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_commutes_pointwise(a in arb_poly(), b in arb_poly(), p in arb_point()) {
        let lhs = (&a + &b).eval_rational(&p);
        let rhs = a.eval_rational(&p) + b.eval_rational(&p);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mul_matches_pointwise(a in arb_poly(), b in arb_poly(), p in arb_point()) {
        let lhs = (&a * &b).eval_rational(&p);
        let rhs = a.eval_rational(&p) * b.eval_rational(&p);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn sub_then_add_roundtrips(a in arb_poly(), b in arb_poly()) {
        prop_assert_eq!(&(&a - &b) + &b, a);
    }

    #[test]
    fn substitution_matches_eval(a in arb_poly(), q in arb_poly(), p in arb_point()) {
        // a[x0 := q] evaluated at p equals a evaluated at (q(p), p1, p2).
        let s = a.substitute(0, &q);
        let mut p2 = p.clone();
        p2[0] = q.eval_rational(&p);
        prop_assert_eq!(s.eval_rational(&p), a.eval_rational(&p2));
    }

    #[test]
    fn univariate_coeffs_reassemble(a in arb_poly()) {
        let coeffs = a.univariate_coeffs(1);
        let x = Poly::var(NVARS, 1);
        let mut back = Poly::zero(NVARS);
        for (k, c) in coeffs.iter().enumerate() {
            back += &(c * &x.pow(k as u32));
        }
        prop_assert_eq!(back, a);
    }

    #[test]
    fn discrete_sum_matches_brute_force(
        a in arb_poly(),
        lo in -5i128..5,
        len in 0i128..8,
        y in -5i128..5,
        z in -5i128..5,
    ) {
        // Sum over var 0 from lo to lo+len-1 with vars 1, 2 fixed.
        let hi = lo + len - 1;
        let lo_p = Poly::constant_int(NVARS, lo);
        let hi_p = Poly::constant_int(NVARS, hi);
        let s = a.discrete_sum(0, &lo_p, &hi_p);
        let mut brute = Rational::ZERO;
        for t in lo..=hi {
            brute += a.eval_rational(&[
                Rational::from_int(t),
                Rational::from_int(y),
                Rational::from_int(z),
            ]);
        }
        let sym = s.eval_rational(&[
            Rational::ZERO,
            Rational::from_int(y),
            Rational::from_int(z),
        ]);
        prop_assert_eq!(sym, brute);
    }

    #[test]
    fn intpoly_agrees_with_poly(a in arb_poly(), y in -9i64..9, z in -9i64..9, x in -9i64..9) {
        let ip = IntPoly::from_poly(&a);
        let exact = a.eval_i128(&[x as i128, y as i128, z as i128]);
        let numer = ip.eval_numer(&[x, y, z]);
        prop_assert_eq!(Rational::new(numer, ip.denominator()), exact);
    }

    #[test]
    fn derivative_of_sum_is_sum_of_derivatives(a in arb_poly(), b in arb_poly()) {
        prop_assert_eq!(
            (&a + &b).derivative(0),
            &a.derivative(0) + &b.derivative(0)
        );
    }

    #[test]
    fn derivative_product_rule(a in arb_poly(), b in arb_poly()) {
        let lhs = (&a * &b).derivative(2);
        let rhs = &(&a.derivative(2) * &b) + &(&a * &b.derivative(2));
        prop_assert_eq!(lhs, rhs);
    }
}
