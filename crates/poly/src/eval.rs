//! Evaluation of polynomials at rational, integer and floating points.

use crate::poly::Poly;
use nrl_rational::{checked_pow_i128, Rational};

impl Poly {
    /// Exact evaluation at a rational point.
    ///
    /// # Panics
    /// Panics if `point.len() != nvars`.
    pub fn eval_rational(&self, point: &[Rational]) -> Rational {
        assert_eq!(point.len(), self.nvars(), "evaluation arity mismatch");
        let mut acc = Rational::ZERO;
        for (m, c) in self.terms() {
            let mut term = *c;
            for (v, &e) in m.0.iter().enumerate() {
                if e > 0 {
                    term *= point[v].pow(e as i32);
                }
            }
            acc += term;
        }
        acc
    }

    /// Exact evaluation at an integer point; the result is rational in
    /// general (ranking polynomials evaluate to integers *on domain
    /// points*, which callers assert via [`Poly::eval_int`]).
    pub fn eval_i128(&self, point: &[i128]) -> Rational {
        assert_eq!(point.len(), self.nvars(), "evaluation arity mismatch");
        let mut acc = Rational::ZERO;
        for (m, c) in self.terms() {
            let mut mono: i128 = 1;
            for (v, &e) in m.0.iter().enumerate() {
                if e > 0 {
                    mono = mono
                        .checked_mul(checked_pow_i128(point[v], e))
                        .expect("integer evaluation overflow");
                }
            }
            acc += *c * Rational::from_int(mono);
        }
        acc
    }

    /// Exact integer evaluation.
    ///
    /// # Panics
    /// Panics if the value is not an integer — for ranking polynomials
    /// this indicates the point is outside the iteration domain or the
    /// polynomial was constructed incorrectly, both programming errors.
    pub fn eval_int(&self, point: &[i128]) -> i128 {
        self.eval_i128(point)
            .to_integer()
            .expect("polynomial did not evaluate to an integer")
    }

    /// Approximate evaluation at a floating-point vector (used by the
    /// closed-form recovery path; exactness is restored afterwards by the
    /// integer verification step). Monomials use `powi` (exponentiation
    /// by squaring) rather than O(degree) repeated multiplication.
    pub fn eval_f64(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.nvars(), "evaluation arity mismatch");
        let mut acc = 0.0;
        for (m, c) in self.terms() {
            let mut term = c.to_f64();
            for (v, &e) in m.0.iter().enumerate() {
                match e {
                    0 => {}
                    1 => term *= point[v],
                    _ => term *= point[v].powi(e as i32),
                }
            }
            acc += term;
        }
        acc
    }

    /// Partially evaluates variable `var` at the rational `value`,
    /// returning a polynomial over the same ambient ring with `var`
    /// eliminated (degree 0 in `var`).
    pub fn eval_var(&self, var: usize, value: Rational) -> Poly {
        let mut out = Poly::zero(self.nvars());
        for (m, c) in self.terms() {
            let e = m.exp(var);
            let coeff = if e > 0 { *c * value.pow(e as i32) } else { *c };
            out.add_term(m.without_var(var), coeff);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// r(i, j) = (2iN + 2j − i² − 3i)/2 — the paper's correlation ranking
    /// polynomial with N = 10, used as a realistic evaluation target.
    fn correlation_rank(n_val: i128) -> Poly {
        // vars: (i, j)
        let i = Poly::var(2, 0);
        let j = Poly::var(2, 1);
        let n = Poly::constant_int(2, n_val);
        (Poly::constant_int(2, 2) * &i * &n + Poly::constant_int(2, 2) * &j
            - i.pow(2)
            - Poly::constant_int(2, 3) * &i)
            .scale(r(1, 2))
    }

    #[test]
    fn eval_matches_paper_values() {
        let rank = correlation_rank(10);
        // r(0, 1) = 1, r(0, 2) = 2, r(1, 2) = N = 10, r(N-2, N-1) = 45
        assert_eq!(rank.eval_int(&[0, 1]), 1);
        assert_eq!(rank.eval_int(&[0, 2]), 2);
        assert_eq!(rank.eval_int(&[1, 2]), 10);
        assert_eq!(rank.eval_int(&[8, 9]), 45);
    }

    #[test]
    fn eval_rational_point() {
        let p = Poly::affine(2, &[2, -3], 1); // 2x - 3y + 1
        assert_eq!(p.eval_rational(&[r(1, 2), r(1, 3)]), r(1, 1));
    }

    #[test]
    fn eval_f64_close_to_exact() {
        let rank = correlation_rank(1000);
        let exact = rank.eval_i128(&[977, 999]).to_f64();
        let approx = rank.eval_f64(&[977.0, 999.0]);
        assert!((exact - approx).abs() < 1e-6 * exact.abs().max(1.0));
    }

    #[test]
    fn eval_var_eliminates() {
        let rank = correlation_rank(10);
        let at_i3 = rank.eval_var(0, r(3, 1));
        assert_eq!(at_i3.degree_in(0), 0);
        for j in 4..10 {
            assert_eq!(at_i3.eval_int(&[0, j]), rank.eval_int(&[3, j]));
        }
    }

    #[test]
    #[should_panic(expected = "did not evaluate to an integer")]
    fn eval_int_rejects_fractions() {
        let p = Poly::constant(1, r(1, 2));
        let _ = p.eval_int(&[0]);
    }

    #[test]
    fn zero_poly_evaluates_to_zero() {
        assert_eq!(Poly::zero(3).eval_int(&[5, 6, 7]), 0);
        assert_eq!(Poly::zero(0).eval_int(&[]), 0);
    }
}
