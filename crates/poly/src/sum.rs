//! Discrete (Faulhaber) summation with polynomial limits — the
//! Ehrhart-counting engine.
//!
//! For the loop model of the paper (affine bounds in the surrounding
//! iterators), the number of points of a sub-nest is the iterated sum of
//! polynomial trip counts over affine ranges. Each such sum is computed
//! symbolically here:
//!
//! `Σ_{t=lo}^{hi} p(t, ·) = P(hi, ·) − P(lo − 1, ·)`
//!
//! where `P` is the discrete antiderivative of `p` in `t`, assembled from
//! Faulhaber's formula (`Σ_{t=0}^{n} t^k` is a degree-`k+1` polynomial in
//! `n` with Bernoulli-number coefficients).

use crate::poly::Poly;
use nrl_rational::{faulhaber_coefficients, Rational};

impl Poly {
    /// The discrete antiderivative evaluated at the polynomial `arg`:
    /// returns `Σ_{t=0}^{arg} self(t, ·)` as a polynomial, where `self`
    /// is read as univariate in `var` and `arg` must be free of `var`.
    fn faulhaber_at(&self, var: usize, arg: &Poly) -> Poly {
        debug_assert_eq!(
            arg.degree_in(var),
            0,
            "summation limit uses the summed variable"
        );
        let coeffs = self.univariate_coeffs(var);
        let mut out = Poly::zero(self.nvars());
        for (k, c_k) in coeffs.iter().enumerate() {
            if c_k.is_zero() {
                continue;
            }
            // S_k(arg) via Horner on the Faulhaber coefficients.
            let fh = faulhaber_coefficients(k as u32);
            let mut s = Poly::zero(self.nvars());
            for f in fh.iter().rev() {
                s = &(&s * arg) + &Poly::constant(self.nvars(), *f);
            }
            out += &(c_k * &s);
        }
        out
    }

    /// Symbolic discrete sum `Σ_{t=lower}^{upper} self(t, ·)`.
    ///
    /// `self` may use variable `var`; `lower` and `upper` must be free of
    /// `var` (they may use any other variable, e.g. outer iterators and
    /// parameters). The result is free of `var`.
    ///
    /// The identity holds *formally*: when `upper = lower − 1` the result
    /// is the zero polynomial, and for `upper ≥ lower − 1` it equals the
    /// literal sum. (Domains with `upper < lower − 1` — negative trip
    /// counts — are rejected upstream by domain validation.)
    ///
    /// # Panics
    /// Panics (debug) if a limit mentions `var`.
    pub fn discrete_sum(&self, var: usize, lower: &Poly, upper: &Poly) -> Poly {
        assert_eq!(self.nvars(), lower.nvars(), "summation arity mismatch");
        assert_eq!(self.nvars(), upper.nvars(), "summation arity mismatch");
        assert_eq!(lower.degree_in(var), 0, "lower limit uses summed variable");
        assert_eq!(upper.degree_in(var), 0, "upper limit uses summed variable");
        let lo_minus_1 = lower - &Poly::constant(self.nvars(), Rational::ONE);
        let hi_part = self.faulhaber_at(var, upper);
        let lo_part = self.faulhaber_at(var, &lo_minus_1);
        &hi_part - &lo_part
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: Σ_{t=lo}^{hi} p with everything numeric.
    fn brute_sum(p: &Poly, var: usize, point: &mut [i128], lo: i128, hi: i128) -> i128 {
        let mut acc = 0i128;
        for t in lo..=hi {
            point[var] = t;
            acc += p.eval_i128(point).to_integer().expect("integer");
        }
        acc
    }

    #[test]
    fn sum_of_ones_is_trip_count() {
        // Σ_{t=l}^{u} 1 = u − l + 1; vars: (t, l, u)
        let one = Poly::constant_int(3, 1);
        let l = Poly::var(3, 1);
        let u = Poly::var(3, 2);
        let s = one.discrete_sum(0, &l, &u);
        let expect = &u - &l + Poly::constant_int(3, 1);
        assert_eq!(s, expect);
    }

    #[test]
    fn sum_of_t_matches_gauss() {
        // Σ_{t=0}^{n} t = n(n+1)/2; vars: (t, n)
        let t = Poly::var(2, 0);
        let n = Poly::var(2, 1);
        let s = t.discrete_sum(0, &Poly::zero(2), &n);
        for nv in 0..30i128 {
            assert_eq!(s.eval_int(&[0, nv]), nv * (nv + 1) / 2);
        }
    }

    #[test]
    fn correlation_inner_count() {
        // The paper's §III computation: Σ_{t=0}^{i−1} (N − t − 1)
        // = (2iN − i² − 3i)/2 + i  … precisely i(2N − i − 1)/2.
        // vars: (t, i, N)
        let t = Poly::var(3, 0);
        let i = Poly::var(3, 1);
        let n = Poly::var(3, 2);
        let body = &n - &t - Poly::constant_int(3, 1);
        let upper = &i - &Poly::constant_int(3, 1);
        let s = body.discrete_sum(0, &Poly::zero(3), &upper);
        for nv in 2..12i128 {
            for iv in 0..nv - 1 {
                assert_eq!(
                    s.eval_int(&[0, iv, nv]),
                    iv * (2 * nv - iv - 1) / 2,
                    "i={iv} N={nv}"
                );
            }
        }
    }

    #[test]
    fn empty_range_sums_to_zero() {
        // Σ_{t=l}^{l−1} p = 0 formally, for any p.
        let t = Poly::var(2, 0);
        let l = Poly::var(2, 1);
        let p = t.pow(3) + Poly::constant_int(2, 4) * &t + Poly::constant_int(2, 9);
        let s = p.discrete_sum(0, &l, &(&l - &Poly::constant_int(2, 1)));
        assert!(s.is_zero(), "got {:?}", s.num_terms());
    }

    #[test]
    fn polynomial_body_with_affine_limits() {
        // Σ_{t=a+1}^{2b} (t² + a·t + 3) checked against brute force.
        // vars: (t, a, b)
        let t = Poly::var(3, 0);
        let a = Poly::var(3, 1);
        let body = t.pow(2) + &a * &t + Poly::constant_int(3, 3);
        let lo = &a + &Poly::constant_int(3, 1);
        let hi = Poly::affine(3, &[0, 0, 2], 0);
        let s = body.discrete_sum(0, &lo, &hi);
        assert_eq!(s.degree_in(0), 0);
        let mut point = [0i128, 0, 0];
        for av in -4..5i128 {
            for bv in 0..6i128 {
                if 2 * bv < av {
                    continue; // only validate non-degenerate ranges
                }
                point[1] = av;
                point[2] = bv;
                let brute = brute_sum(&body, 0, &mut point.clone(), av + 1, 2 * bv);
                assert_eq!(s.eval_int(&[0, av, bv]), brute, "a={av} b={bv}");
            }
        }
    }

    #[test]
    fn iterated_sum_counts_triangle() {
        // #{(i, j) | 0 ≤ i ≤ N−2, i+1 ≤ j ≤ N−1} = N(N−1)/2
        // vars: (i, j, N)
        let one = Poly::constant_int(3, 1);
        let i = Poly::var(3, 0);
        let n = Poly::var(3, 2);
        let inner = one.discrete_sum(
            1,
            &(&i + &Poly::constant_int(3, 1)),
            &(&n - &Poly::constant_int(3, 1)),
        );
        let total = inner.discrete_sum(0, &Poly::zero(3), &(&n - &Poly::constant_int(3, 2)));
        for nv in 1..50i128 {
            assert_eq!(total.eval_int(&[0, 0, nv]), nv * (nv - 1) / 2, "N={nv}");
        }
    }

    #[test]
    fn tetrahedral_count_matches_figure6() {
        // Paper Fig. 6: i in 0..N−1, j in 0..i+1, k in j..i+1 (strict <).
        // Total = (N³ − N)/6. vars: (i, j, k, N)
        let one = Poly::constant_int(4, 1);
        let i = Poly::var(4, 0);
        let j = Poly::var(4, 1);
        let n = Poly::var(4, 3);
        // k from j to i (inclusive)
        let ck = one.discrete_sum(2, &j, &i);
        // j from 0 to i (inclusive)
        let cj = ck.discrete_sum(1, &Poly::zero(4), &i);
        // i from 0 to N−2 (inclusive)
        let total = cj.discrete_sum(0, &Poly::zero(4), &(&n - &Poly::constant_int(4, 2)));
        for nv in 1..30i128 {
            assert_eq!(
                total.eval_int(&[0, 0, 0, nv]),
                (nv * nv * nv - nv) / 6,
                "N={nv}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "uses summed variable")]
    fn limit_using_summed_variable_rejected() {
        let t = Poly::var(2, 0);
        let _ = t.discrete_sum(0, &Poly::zero(2), &Poly::var(2, 0));
    }
}
