//! [`ParamCompiledPoly`]: parametric lowering — the analyze-once half
//! of the plan compiler.
//!
//! [`CompiledPoly`] lowers a polynomial whose
//! parameters are already bound; re-binding the same nest at new
//! parameter values therefore repeats the whole symbolic pipeline
//! (rational parameter folding, ring shrinking, re-lowering) even
//! though only the *coefficient values* change. `ParamCompiledPoly`
//! lowers once over the **full ring** (iterators and parameters
//! together): each ladder rung's coefficients are themselves small
//! integer ladders in the parameter vector, so instantiating the plan
//! at concrete parameters is a handful of checked multiply-adds per
//! coefficient — no `Rational` arithmetic, no ring surgery, no
//! re-lowering.
//!
//! Instantiation is **value-identical to binding from scratch**: the
//! folded coefficients are renormalized by their gcd with the symbolic
//! denominator and trailing zero rungs are trimmed, so the produced
//! [`CompiledPoly`]/[`IntPoly`] have exactly the degree, denominator
//! and coefficient values that `CompiledPoly::lower` /
//! `IntPoly::from_poly` produce on the parameter-bound polynomial —
//! downstream magnitude proofs and engine decisions cannot diverge.

use crate::compiled::{CompileError, PrefixTerm};
use crate::intpoly::IntPoly;
use crate::poly::Poly;
use crate::{CompiledPoly, MAX_COMPILED_COEFFS};
use nrl_rational::gcd_i128;

/// One folded rung: `(iterator pows, folded coefficient)` pairs.
type FoldedRung<'a> = Vec<(&'a [(u32, u32)], i128)>;

/// One parameter-monomial of a coefficient ladder: `coeff · Π p_m^e`.
#[derive(Clone, Debug)]
struct ParamTerm {
    coeff: i128,
    /// Sparse exponents over the parameters, `(param, exp)` with
    /// `exp ≥ 1` (`param` is the 0-based index into the parameter
    /// vector, not the ring variable).
    ppows: Vec<(u32, u32)>,
}

/// One iterator-monomial of a ladder rung, with its coefficient kept
/// symbolic in the parameters.
#[derive(Clone, Debug)]
struct ParamGroup {
    /// Sparse exponents over the prefix iterators (`var < iter_vars`,
    /// `var != x`).
    pows: Vec<(u32, u32)>,
    /// The coefficient as an integer polynomial in the parameters
    /// (scaled by the symbolic denominator).
    coeff: Vec<ParamTerm>,
}

/// A polynomial over `(iterators…, parameters…)` lowered
/// univariate-in-`x` **with the parameters kept symbolic**: the ladder
/// shape, iterator monomials and the parameter ladders of every
/// coefficient are fixed at analyze time;
/// [`instantiate`](Self::instantiate) folds a concrete parameter
/// vector into a ready-to-specialize [`CompiledPoly`] (and the
/// matching reference [`IntPoly`]) in microseconds.
#[derive(Clone, Debug)]
pub struct ParamCompiledPoly {
    /// Ring arity of the *instantiated* polynomials (the iterators).
    iter_vars: usize,
    nparams: usize,
    x: usize,
    /// Denominator LCM of the symbolic polynomial; instantiation
    /// renormalizes by the gcd with the folded coefficients, so the
    /// instantiated denominator matches a from-scratch lowering.
    den: i128,
    /// `rungs[j]` holds the iterator-monomial groups of the `x^j`
    /// coefficient, sorted by `pows` (the `CompiledPoly::lower` order).
    rungs: Vec<Vec<ParamGroup>>,
}

impl ParamCompiledPoly {
    /// Lowers `p` (ring = `iter_vars` iterators followed by the
    /// parameters) univariate in iterator `x`, keeping the parameters
    /// symbolic.
    pub fn lower(p: &Poly, x: usize, iter_vars: usize) -> Result<Self, CompileError> {
        let nvars = p.nvars();
        assert!(
            iter_vars <= nvars,
            "iterator count exceeds the polynomial ring"
        );
        assert!(x < iter_vars, "univariate variable must be an iterator");
        let nparams = nvars - iter_vars;
        let deg = p.degree_in(x);
        if deg as usize >= MAX_COMPILED_COEFFS {
            return Err(CompileError::DegreeTooHigh { degree: deg });
        }
        let den = p.denominator_lcm();
        let mut rungs: Vec<Vec<ParamGroup>> = vec![Vec::new(); deg as usize + 1];
        for (m, c) in p.terms() {
            let scaled = c
                .numer()
                .checked_mul(den / c.denom())
                .ok_or(CompileError::CoefficientOverflow)?;
            let j = m.exp(x) as usize;
            let mut pows = Vec::new();
            for v in (0..iter_vars).filter(|&v| v != x) {
                let e = m.exp(v);
                if e > 0 {
                    pows.push((v as u32, e));
                }
            }
            let mut ppows = Vec::new();
            for q in 0..nparams {
                let e = m.exp(iter_vars + q);
                if e > 0 {
                    ppows.push((q as u32, e));
                }
            }
            let term = ParamTerm {
                coeff: scaled,
                ppows,
            };
            match rungs[j].iter_mut().find(|g| g.pows == pows) {
                Some(group) => group.coeff.push(term),
                None => rungs[j].push(ParamGroup {
                    pows,
                    coeff: vec![term],
                }),
            }
        }
        // Match the deterministic rung order of `CompiledPoly::lower`.
        for rung in &mut rungs {
            rung.sort_by(|a, b| a.pows.cmp(&b.pows));
        }
        Ok(ParamCompiledPoly {
            iter_vars,
            nparams,
            x,
            den,
            rungs,
        })
    }

    /// The designated univariate variable.
    pub fn x(&self) -> usize {
        self.x
    }

    /// Ring arity of instantiated polynomials.
    pub fn iter_vars(&self) -> usize {
        self.iter_vars
    }

    /// Number of parameters the coefficient ladders read.
    pub fn nparams(&self) -> usize {
        self.nparams
    }

    /// Symbolic degree in `x` — an upper bound on the instantiated
    /// degree (leading coefficients can vanish at specific parameters).
    pub fn degree_bound(&self) -> usize {
        self.rungs.len() - 1
    }

    /// Folds the parameter ladders at `params`, producing the lowered
    /// [`CompiledPoly`] and the matching reference [`IntPoly`] over the
    /// iterator-only ring — **exactly** the pair a from-scratch
    /// parameter bind + lowering produces (same degree, denominator and
    /// coefficients).
    ///
    /// # Panics
    /// Panics on `i128` overflow while folding (the same contract as
    /// rational parameter binding, which overflows on the same inputs).
    pub fn instantiate(&self, params: &[i64]) -> (CompiledPoly, IntPoly) {
        assert_eq!(params.len(), self.nparams, "parameter arity mismatch");
        // Fold every coefficient ladder; drop vanished monomials so the
        // instantiated term set matches what `Poly` normalization would
        // have kept.
        let mut folded: Vec<FoldedRung<'_>> = Vec::with_capacity(self.rungs.len());
        let mut gcd_acc: i128 = 0;
        for rung in &self.rungs {
            let mut out = Vec::with_capacity(rung.len());
            for group in rung {
                let mut acc: i128 = 0;
                for term in &group.coeff {
                    let mut t = term.coeff;
                    for &(q, e) in &term.ppows {
                        let powed = (params[q as usize] as i128)
                            .checked_pow(e)
                            .expect("ParamCompiledPoly instantiation overflow");
                        t = t
                            .checked_mul(powed)
                            .expect("ParamCompiledPoly instantiation overflow");
                    }
                    acc = acc
                        .checked_add(t)
                        .expect("ParamCompiledPoly instantiation overflow");
                }
                if acc != 0 {
                    gcd_acc = gcd_i128(gcd_acc, acc);
                    out.push((group.pows.as_slice(), acc));
                }
            }
            folded.push(out);
        }
        // Renormalize to the denominator a from-scratch lowering of the
        // bound polynomial would clear: den / gcd(den, coefficients).
        // A vanished polynomial reduces to 0/1 (the `Poly::zero` shape).
        let g = if gcd_acc == 0 {
            self.den
        } else {
            gcd_i128(self.den, gcd_acc)
        };
        let den = self.den / g;
        // Trim trailing rungs that vanished at these parameters: the
        // bound polynomial's degree drops with them, and degree drives
        // the closed-form/engine decisions downstream.
        let deg = folded
            .iter()
            .rposition(|rung| !rung.is_empty())
            .unwrap_or(0);
        let mut ladder: Vec<Vec<PrefixTerm>> = Vec::with_capacity(deg + 1);
        let mut int_terms = Vec::new();
        for (j, rung) in folded.iter().enumerate().take(deg + 1) {
            let mut rung_terms = Vec::with_capacity(rung.len());
            for &(pows, c) in rung {
                rung_terms.push(PrefixTerm {
                    coeff: c / g,
                    pows: pows.to_vec(),
                });
                let mut exps = vec![0u32; self.iter_vars];
                exps[self.x] = j as u32;
                for &(v, e) in pows {
                    exps[v as usize] = e;
                }
                int_terms.push((exps, c / g));
            }
            ladder.push(rung_terms);
        }
        (
            CompiledPoly::from_parts(self.iter_vars, self.x, den, ladder),
            IntPoly::from_parts(self.iter_vars, den, int_terms),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrl_rational::Rational;

    /// Binds the trailing parameters of `p` to concrete values and
    /// shrinks to the iterator ring — the from-scratch reference path
    /// (mirrors `nrl_core`'s bind).
    fn bind_poly(p: &Poly, iter_vars: usize, params: &[i64]) -> Poly {
        let mut out = p.clone();
        for (offset, &value) in params.iter().enumerate() {
            out = out.eval_var(iter_vars + offset, Rational::from_int(value as i128));
        }
        out.shrink_vars(iter_vars)
    }

    /// r(i, j, N) = (2iN + 2j − i² − 3i)/2 over ring (i, j | N).
    fn correlation_rank() -> Poly {
        let i = Poly::var(3, 0);
        let j = Poly::var(3, 1);
        let n = Poly::var(3, 2);
        (Poly::constant_int(3, 2) * &i * &n + Poly::constant_int(3, 2) * &j
            - i.pow(2)
            - Poly::constant_int(3, 3) * &i)
            .scale(Rational::new(1, 2))
    }

    fn assert_matches_fresh(p: &Poly, x: usize, iter_vars: usize, params: &[i64]) {
        let pcp = ParamCompiledPoly::lower(p, x, iter_vars).expect("lowerable");
        let (cp, ip) = pcp.instantiate(params);
        let bound = bind_poly(p, iter_vars, params);
        let fresh_cp = CompiledPoly::lower(&bound, x).expect("lowerable");
        let fresh_ip = IntPoly::from_poly(&bound);
        assert_eq!(cp.degree(), fresh_cp.degree(), "degree at {params:?}");
        assert_eq!(
            cp.denominator(),
            fresh_cp.denominator(),
            "denominator at {params:?}"
        );
        assert_eq!(ip.denominator(), fresh_ip.denominator());
        // Value-identical on a grid of prefixes and probes.
        let mut point = vec![0i64; iter_vars];
        for a in -3..4i64 {
            for v in point.iter_mut() {
                *v = a * 7;
            }
            let spec = cp.specialize(&point, false);
            let fresh_spec = fresh_cp.specialize(&point, false);
            for probe in -5..6i64 {
                assert_eq!(
                    spec.eval_numer(probe),
                    fresh_spec.eval_numer(probe),
                    "prefix {a} probe {probe} params {params:?}"
                );
                point[x] = probe;
                assert_eq!(ip.eval_numer(&point), fresh_ip.eval_numer(&point));
            }
        }
    }

    #[test]
    fn instantiation_matches_fresh_lowering() {
        let p = correlation_rank();
        for x in 0..2usize {
            for n in [2i64, 3, 10, 1000, 1 << 20] {
                assert_matches_fresh(&p, x, 2, &[n]);
            }
        }
    }

    #[test]
    fn vanishing_leading_coefficient_drops_degree() {
        // (N − 5)·x² + x: quadratic except at N = 5, where the fresh
        // bind is linear — instantiation must trim the rung (and with
        // it the closed-form/engine decisions downstream).
        let x = Poly::var(2, 0);
        let n = Poly::var(2, 1);
        let p = (&n - &Poly::constant_int(2, 5)) * x.pow(2) + x.clone();
        let pcp = ParamCompiledPoly::lower(&p, 0, 1).unwrap();
        assert_eq!(pcp.degree_bound(), 2);
        let (quad, _) = pcp.instantiate(&[7]);
        assert_eq!(quad.degree(), 2);
        let (lin, _) = pcp.instantiate(&[5]);
        assert_eq!(lin.degree(), 1);
        assert_matches_fresh(&p, 0, 1, &[5]);
        assert_matches_fresh(&p, 0, 1, &[7]);
    }

    #[test]
    fn denominator_renormalizes_like_fresh_bind() {
        // (N/2)·x + 1/3: symbolic denominator 6; at even N the fresh
        // bind reduces to denominator 3, at odd N it stays 6.
        let x = Poly::var(2, 0);
        let n = Poly::var(2, 1);
        let p = n.scale(Rational::new(1, 2)) * &x + Poly::constant(2, Rational::new(1, 3));
        for nv in [2i64, 3, 4, 9, 100] {
            assert_matches_fresh(&p, 0, 1, &[nv]);
        }
    }

    #[test]
    fn zero_instantiation_matches_zero_poly() {
        // N·x vanishes entirely at N = 0: the instantiated pair must
        // match lowering the zero polynomial (degree 0, denominator 1).
        let p = Poly::var(2, 1) * Poly::var(2, 0);
        let pcp = ParamCompiledPoly::lower(&p, 0, 1).unwrap();
        let (cp, ip) = pcp.instantiate(&[0]);
        assert_eq!(cp.degree(), 0);
        assert_eq!(cp.denominator(), 1);
        assert_eq!(ip.denominator(), 1);
        assert_eq!(cp.specialize(&[9], false).eval_int(123), 0);
        assert_matches_fresh(&p, 0, 1, &[0]);
    }

    #[test]
    fn parameter_free_polynomials_instantiate_trivially() {
        let p = correlation_rank();
        // Treat all three ring variables as iterators: no parameters.
        let pcp = ParamCompiledPoly::lower(&p, 1, 3).unwrap();
        assert_eq!(pcp.nparams(), 0);
        let (cp, _) = pcp.instantiate(&[]);
        let fresh = CompiledPoly::lower(&p, 1).unwrap();
        assert_eq!(cp.degree(), fresh.degree());
        assert_eq!(cp.denominator(), fresh.denominator());
        let point = [3i64, 0, 17];
        assert_eq!(
            cp.specialize(&point, false).eval_numer(5),
            fresh.specialize(&point, false).eval_numer(5)
        );
    }

    #[test]
    fn degree_cap_is_enforced() {
        let x = Poly::var(2, 0);
        let p = x.pow(MAX_COMPILED_COEFFS as u32);
        assert!(matches!(
            ParamCompiledPoly::lower(&p, 0, 1),
            Err(CompileError::DegreeTooHigh { .. })
        ));
    }
}
