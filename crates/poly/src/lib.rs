#![warn(missing_docs)]
//! Exact multivariate polynomials over rationals, with the discrete
//! (Faulhaber) summation operator used to build ranking Ehrhart
//! polynomials.
//!
//! The collapsing transformation of Clauss et al. (IPDPS'17) needs three
//! symbolic operations on polynomials whose variables are loop iterators
//! and size parameters:
//!
//! 1. ring arithmetic (add/mul/pow) — to assemble trip counts,
//! 2. substitution of a variable by another polynomial — to plug in
//!    affine loop bounds and lexicographic-minimum continuations,
//! 3. **discrete summation** `Σ_{t=lo}^{hi} p(t, ·)` with polynomial
//!    limits — the Ehrhart-counting step. For nests with affine bounds
//!    this is exactly iterated Faulhaber summation and produces the same
//!    polynomial a polyhedral counter (PolyLib/barvinok) would.
//!
//! [`Poly`] is the exact rational-coefficient workhorse; [`IntPoly`] is a
//! denominator-cleared specialisation for fast exact `i128` evaluation in
//! the run-time index-recovery path.
//!
//! # Examples
//!
//! Counting the triangle `{0 <= i < N, i+1 <= j < N}` by summing 1 over
//! both loops symbolically (variables: 0 = i, 1 = j, 2 = N):
//!
//! ```
//! use nrl_poly::Poly;
//! use nrl_rational::Rational;
//!
//! let one = Poly::constant_int(3, 1);
//! let i = Poly::var(3, 0);
//! let n = Poly::var(3, 2);
//! // inner count: sum_{j = i+1}^{N-1} 1 = N - 1 - i
//! let inner = one.discrete_sum(1, &(&i + &one), &(&n - &one));
//! // total: sum_{i = 0}^{N-2} (N - 1 - i) = (N^2 - N)/2
//! let total = inner.discrete_sum(0, &Poly::zero(3), &(&n - &Poly::constant_int(3, 2)));
//! assert_eq!(total.eval_i128(&[0, 0, 10]), Rational::from_int(45));
//! ```

pub mod compiled;
pub mod display;
pub mod eval;
pub mod intpoly;
pub mod lanes;
pub mod monomial;
pub mod param;
pub mod poly;
pub mod subst;
pub mod sum;

pub use compiled::{CompileError, CompiledPoly, SpecializedPoly, MAX_COMPILED_COEFFS};
pub use intpoly::IntPoly;
pub use lanes::{LaneHorner, LANE_WIDTH};
pub use monomial::Monomial;
pub use nrl_rational::Rational;
pub use param::ParamCompiledPoly;
pub use poly::Poly;
