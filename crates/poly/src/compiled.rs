//! [`CompiledPoly`]: the lowering pass behind the run-time index
//! recovery hot path.
//!
//! The recovery loop inverts `R_k(x) = pc` with many *probes* of the
//! same polynomial at one fixed prefix `(i_0 … i_{k−1})`: the ±1
//! verification window of the closed form, every step of the
//! binary-search fallback, and the final exactness checks. Evaluating
//! the multivariate [`IntPoly`](crate::IntPoly) term-by-term pays a
//! `checked_pow` per monomial per probe; across a binary search that is
//! `O(terms · degree · log ub)` multiplies for what is mathematically a
//! univariate polynomial of tiny degree.
//!
//! `CompiledPoly` lowers the polynomial **once** into a dense,
//! Horner-ordered coefficient ladder, univariate in a designated
//! variable `x`, with the prefix variables factored into per-rung term
//! lists. At run time, [`CompiledPoly::specialize`] folds a concrete
//! prefix into a flat `[i128; deg+1]` array exactly once per recovery —
//! after which every probe is an `O(deg)` Horner evaluation with zero
//! allocation and no pow recomputation. A magnitude analysis
//! ([`CompiledPoly::magnitude_bound`]) lets callers prove at bind time
//! that every Horner intermediate fits in `i64`, unlocking an
//! unchecked-arithmetic fast path (the checked `i128` ladder remains
//! the fallback).

use crate::poly::Poly;

/// Maximum univariate degree + 1 the specialized ladder supports.
///
/// Ranking polynomials have total degree at most the nest depth, and
/// the deepest supported nest is 16 loops, so 17 coefficients suffice.
pub const MAX_COMPILED_COEFFS: usize = 17;

/// One prefix-variable monomial of a ladder rung: `coeff · Π v^e`.
#[derive(Clone, Debug)]
pub(crate) struct PrefixTerm {
    pub(crate) coeff: i128,
    /// Sparse exponents over the prefix variables, `(var, exp)` with
    /// `exp ≥ 1` and `var != x`.
    pub(crate) pows: Vec<(u32, u32)>,
}

/// A polynomial lowered univariate-in-`x`: `(Σ_j C_j(prefix) · x^j) / den`
/// with each `C_j` a term list over the remaining variables.
#[derive(Clone, Debug)]
pub struct CompiledPoly {
    nvars: usize,
    x: usize,
    den: i128,
    /// `ladder[j]` holds the terms of `C_j`; length `deg + 1`.
    ladder: Vec<Vec<PrefixTerm>>,
}

/// Errors from [`CompiledPoly::lower`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Degree in the designated variable exceeds the ladder capacity.
    DegreeTooHigh {
        /// The offending degree.
        degree: u32,
    },
    /// Lowering would overflow `i128` coefficient scaling.
    CoefficientOverflow,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::DegreeTooHigh { degree } => write!(
                f,
                "degree {degree} exceeds the compiled ladder capacity {}",
                MAX_COMPILED_COEFFS - 1
            ),
            CompileError::CoefficientOverflow => {
                write!(f, "coefficient scaling overflowed i128 during lowering")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl CompiledPoly {
    /// Assembles a ladder from already-lowered parts (the parametric
    /// instantiation path — see [`crate::param::ParamCompiledPoly`]).
    pub(crate) fn from_parts(
        nvars: usize,
        x: usize,
        den: i128,
        ladder: Vec<Vec<PrefixTerm>>,
    ) -> Self {
        debug_assert!(!ladder.is_empty() && den >= 1);
        CompiledPoly {
            nvars,
            x,
            den,
            ladder,
        }
    }

    /// Lowers `p` into a Horner ladder univariate in variable `x`.
    ///
    /// Denominators are cleared exactly once (`p = ladder / den`); all
    /// remaining arithmetic is integer.
    pub fn lower(p: &Poly, x: usize) -> Result<Self, CompileError> {
        let nvars = p.nvars();
        assert!(x < nvars, "univariate variable out of range");
        let deg = p.degree_in(x);
        if deg as usize >= MAX_COMPILED_COEFFS {
            return Err(CompileError::DegreeTooHigh { degree: deg });
        }
        let den = p.denominator_lcm();
        let mut ladder: Vec<Vec<PrefixTerm>> = vec![Vec::new(); deg as usize + 1];
        for (m, c) in p.terms() {
            let scaled = c
                .numer()
                .checked_mul(den / c.denom())
                .ok_or(CompileError::CoefficientOverflow)?;
            let j = m.exp(x) as usize;
            let mut pows = Vec::new();
            for v in (0..nvars).filter(|&v| v != x) {
                let e = m.exp(v);
                if e > 0 {
                    pows.push((v as u32, e));
                }
            }
            ladder[j].push(PrefixTerm {
                coeff: scaled,
                pows,
            });
        }
        // Horner order inside each rung: group low-variable terms first
        // for deterministic, cache-friendly specialization sweeps.
        for rung in &mut ladder {
            rung.sort_by(|a, b| a.pows.cmp(&b.pows));
        }
        Ok(CompiledPoly {
            nvars,
            x,
            den,
            ladder,
        })
    }

    /// The ring arity the ladder was lowered from.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The designated univariate variable.
    pub fn x(&self) -> usize {
        self.x
    }

    /// Degree in `x`.
    pub fn degree(&self) -> usize {
        self.ladder.len() - 1
    }

    /// The cleared common denominator (always ≥ 1).
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Folds the prefix variables to the values in `point` (only
    /// entries for variables actually used are read; `point[x]` is
    /// ignored), producing the flat Horner ladder for this recovery.
    ///
    /// `i64_ok` asserts the caller's proof (see
    /// [`Self::magnitude_bound`]) that unchecked `i64` Horner cannot
    /// overflow for the probe range; pass `false` when unproven.
    ///
    /// # Panics
    /// Panics on `i128` overflow while folding (the same contract as
    /// [`IntPoly::eval_numer`](crate::IntPoly::eval_numer)).
    #[inline]
    pub fn specialize(&self, point: &[i64], i64_ok: bool) -> SpecializedPoly {
        let mut c = [0i128; MAX_COMPILED_COEFFS];
        for (j, rung) in self.ladder.iter().enumerate() {
            let mut acc: i128 = 0;
            for term in rung {
                let mut t = term.coeff;
                // Exponents are tiny (≤ 16): checked_pow's squaring
                // ladder beats materializing per-variable pow tables,
                // whose zero-init alone would dominate small rungs.
                for &(v, e) in &term.pows {
                    let powed = (point[v as usize] as i128)
                        .checked_pow(e)
                        .expect("CompiledPoly specialization overflow");
                    t = t
                        .checked_mul(powed)
                        .expect("CompiledPoly specialization overflow");
                }
                acc = acc
                    .checked_add(t)
                    .expect("CompiledPoly specialization overflow");
            }
            c[j] = acc;
        }
        SpecializedPoly {
            deg: self.ladder.len() - 1,
            den: self.den,
            c,
            i64_ok,
        }
    }

    /// One-shot evaluation of the numerator at a full point (prefix
    /// *and* `x` read from `point`): folds each rung and Horner-steps
    /// in a single pass, without materializing a [`SpecializedPoly`].
    /// The stateless-`rank()` path — callers evaluating many points at
    /// one prefix should specialize once instead.
    ///
    /// The rung-folding below deliberately mirrors [`Self::specialize`]
    /// (keep the two in sync): fusing the Horner step into the fold
    /// skips the `[i128; MAX_COMPILED_COEFFS]` zero-init and second
    /// pass, measured ~25% faster on low-term ranking polynomials
    /// (`rank/compiled` bench) — exactly the per-point stateless shape.
    ///
    /// # Panics
    /// Panics on `i128` overflow (same contract as [`Self::specialize`]).
    pub fn eval_numer_at(&self, point: &[i64]) -> i128 {
        let x = point[self.x] as i128;
        let mut acc: i128 = 0;
        for rung in self.ladder.iter().rev() {
            let mut rung_val: i128 = 0;
            for term in rung {
                let mut t = term.coeff;
                for &(v, e) in &term.pows {
                    let powed = (point[v as usize] as i128)
                        .checked_pow(e)
                        .expect("CompiledPoly evaluation overflow");
                    t = t
                        .checked_mul(powed)
                        .expect("CompiledPoly evaluation overflow");
                }
                rung_val = rung_val
                    .checked_add(t)
                    .expect("CompiledPoly evaluation overflow");
            }
            acc = acc
                .checked_mul(x)
                .and_then(|a| a.checked_add(rung_val))
                .expect("CompiledPoly evaluation overflow");
        }
        acc
    }

    /// Exact integer value of the full fraction at a point.
    ///
    /// # Panics
    /// Panics if the value is not an integer at this point.
    pub fn eval_int_at(&self, point: &[i64]) -> i128 {
        let numer = self.eval_numer_at(point);
        assert!(
            numer % self.den == 0,
            "CompiledPoly evaluated to a non-integer at {point:?}"
        );
        numer / self.den
    }

    /// Bounds `Σ_j |C_j|(V) · X^j` — a bound on every Horner
    /// intermediate of any specialization whose prefix values satisfy
    /// `|point[v]| ≤ var_abs[v]` probed at `|x| ≤ x_abs` — where
    /// `|C_j|(V)` sums absolute term values at the per-variable bounds.
    ///
    /// Returns `None` when the bound itself overflows `i128` (callers
    /// then keep the checked path). Requires `x_abs ≥ 1` for the
    /// intermediate-dominance argument; smaller values are promoted.
    pub fn magnitude_bound(&self, var_abs: &[i64], x_abs: i64) -> Option<i128> {
        let x_abs = (x_abs.max(1)) as i128;
        let mut total: i128 = 0;
        for (j, rung) in self.ladder.iter().enumerate() {
            let mut rung_abs: i128 = 0;
            for term in rung {
                let mut t = term.coeff.unsigned_abs() as i128;
                // unsigned_abs of i128::MIN would wrap the cast; treat
                // it as unreachable-but-safe by failing the bound.
                if t < 0 {
                    return None;
                }
                for &(v, e) in &term.pows {
                    let base = var_abs.get(v as usize).copied().unwrap_or(i64::MAX) as i128;
                    t = t.checked_mul(base.checked_pow(e)?)?;
                }
                rung_abs = rung_abs.checked_add(t)?;
            }
            let xj = x_abs.checked_pow(j as u32)?;
            total = total.checked_add(rung_abs.checked_mul(xj)?)?;
        }
        // One extra factor of X covers the `acc * x` step that precedes
        // each coefficient addition in the Horner recurrence.
        total.checked_mul(x_abs)
    }
}

/// A [`CompiledPoly`] with the prefix folded in: the flat Horner ladder
/// `(Σ_j c[j]·x^j) / den` every probe of one recovery evaluates.
///
/// Plain `Copy` data — lives on the recovering thread's stack.
#[derive(Clone, Copy, Debug)]
pub struct SpecializedPoly {
    deg: usize,
    den: i128,
    c: [i128; MAX_COMPILED_COEFFS],
    i64_ok: bool,
}

impl SpecializedPoly {
    /// Degree in `x`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.deg
    }

    /// The cleared denominator (≥ 1).
    #[inline]
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Coefficient `c[j]` of the numerator ladder.
    #[inline]
    pub fn coeff(&self, j: usize) -> i128 {
        self.c[j]
    }

    /// Whether the unchecked `i64` Horner path is proven safe.
    #[inline]
    pub fn i64_fast_path(&self) -> bool {
        self.i64_ok
    }

    /// Numerator value at `x`: an `O(deg)` Horner sweep. Uses the
    /// proven `i64` fast path when available, checked `i128` otherwise.
    #[inline]
    pub fn eval_numer(&self, x: i64) -> i128 {
        if self.i64_ok {
            // Safety of plain ops: the caller proved via
            // `magnitude_bound` that every intermediate fits in i64.
            let mut acc = self.c[self.deg] as i64;
            let mut j = self.deg;
            while j > 0 {
                j -= 1;
                acc = acc * x + self.c[j] as i64;
            }
            acc as i128
        } else {
            let mut acc = self.c[self.deg];
            let mut j = self.deg;
            while j > 0 {
                j -= 1;
                acc = acc
                    .checked_mul(x as i128)
                    .and_then(|t| t.checked_add(self.c[j]))
                    .expect("SpecializedPoly evaluation overflow");
            }
            acc
        }
    }

    /// Exact integer value at `x`.
    ///
    /// # Panics
    /// Panics if the value is not an integer at `x` (point outside the
    /// lattice the polynomial counts).
    #[inline]
    pub fn eval_int(&self, x: i64) -> i128 {
        let numer = self.eval_numer(x);
        assert!(
            numer % self.den == 0,
            "SpecializedPoly evaluated to a non-integer at x={x}"
        );
        numer / self.den
    }

    /// Approximate value at a real `x` (closed-form root path): Horner
    /// over the exact integer coefficients, one division at the end.
    #[inline]
    pub fn eval_f64(&self, x: f64) -> f64 {
        let mut acc = self.c[self.deg] as f64;
        let mut j = self.deg;
        while j > 0 {
            j -= 1;
            acc = acc * x + self.c[j] as f64;
        }
        acc / self.den as f64
    }

    /// The dense `f64` coefficient vector `c[j]/den` for the root
    /// solver, written into `out[..=deg]`.
    #[inline]
    pub fn write_f64_coeffs(&self, out: &mut [f64]) {
        let inv_den = 1.0 / self.den as f64;
        for (slot, &c) in out[..=self.deg].iter_mut().zip(&self.c) {
            *slot = c as f64 * inv_den;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intpoly::IntPoly;
    use nrl_rational::Rational;

    /// r(i, j, N) = (2iN + 2j − i² − 3i)/2 — the correlation ranking
    /// polynomial, univariate-in-j linear, univariate-in-i quadratic.
    fn correlation_rank() -> Poly {
        let i = Poly::var(3, 0);
        let j = Poly::var(3, 1);
        let n = Poly::var(3, 2);
        (Poly::constant_int(3, 2) * &i * &n + Poly::constant_int(3, 2) * &j
            - i.pow(2)
            - Poly::constant_int(3, 3) * &i)
            .scale(Rational::new(1, 2))
    }

    #[test]
    fn specialization_matches_intpoly() {
        let p = correlation_rank();
        let ip = IntPoly::from_poly(&p);
        for x_var in 0..2usize {
            let cp = CompiledPoly::lower(&p, x_var).unwrap();
            assert_eq!(cp.denominator(), 2);
            for n in [3i64, 10, 1000] {
                for a in 0..3i64 {
                    for b in 1..4i64 {
                        let mut point = [a, b, n];
                        let spec = cp.specialize(&point, false);
                        for x in -3..12i64 {
                            point[x_var] = x;
                            assert_eq!(
                                spec.eval_numer(x),
                                ip.eval_numer(&point),
                                "var {x_var} point {point:?}"
                            );
                            assert_eq!(
                                cp.eval_numer_at(&point),
                                ip.eval_numer(&point),
                                "one-shot eval, var {x_var} point {point:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn i64_fast_path_agrees_with_checked() {
        let p = correlation_rank();
        let cp = CompiledPoly::lower(&p, 0).unwrap();
        let bound = cp
            .magnitude_bound(&[0, 1000, 1000], 1001)
            .expect("bound computes");
        assert!(bound <= i64::MAX as i128, "small case must prove i64-safe");
        let point = [0i64, 700, 1000];
        let fast = cp.specialize(&point, true);
        let checked = cp.specialize(&point, false);
        for x in 0..1000 {
            assert_eq!(fast.eval_numer(x), checked.eval_numer(x));
        }
    }

    #[test]
    fn magnitude_bound_rejects_overflowing_domains() {
        let p = correlation_rank();
        let cp = CompiledPoly::lower(&p, 0).unwrap();
        // N ~ 2^62: i² term alone exceeds i64.
        let huge = 1i64 << 62;
        match cp.magnitude_bound(&[huge, huge, huge], huge) {
            None => {}
            Some(b) => assert!(b > i64::MAX as i128),
        }
    }

    #[test]
    fn eval_f64_tracks_exact() {
        let p = correlation_rank();
        let cp = CompiledPoly::lower(&p, 1).unwrap();
        let spec = cp.specialize(&[500, 0, 1000], false);
        let exact = spec.eval_int(900) as f64;
        assert!((spec.eval_f64(900.0) - exact).abs() <= 1e-6 * exact.abs());
        let mut cf = [0.0f64; MAX_COMPILED_COEFFS];
        spec.write_f64_coeffs(&mut cf);
        assert!((cf[0] + cf[1] * 900.0 - exact).abs() <= 1e-6 * exact.abs());
    }

    #[test]
    fn degree_cap_is_enforced() {
        let x = Poly::var(1, 0);
        let p = x.pow(MAX_COMPILED_COEFFS as u32);
        assert!(matches!(
            CompiledPoly::lower(&p, 0),
            Err(CompileError::DegreeTooHigh { .. })
        ));
        // Prefix-variable exponents are not capped (specialization uses
        // checked_pow, no table): high prefix degrees lower fine.
        let y = Poly::var(2, 1);
        let q = Poly::var(2, 0) * y.pow(MAX_COMPILED_COEFFS as u32);
        let cp = CompiledPoly::lower(&q, 0).expect("prefix degree is unconstrained");
        assert_eq!(
            cp.specialize(&[0, 2], false).coeff(1),
            1 << MAX_COMPILED_COEFFS
        );
    }

    #[test]
    fn zero_poly_compiles() {
        let cp = CompiledPoly::lower(&Poly::zero(2), 0).unwrap();
        let spec = cp.specialize(&[5, 7], false);
        assert_eq!(spec.degree(), 0);
        assert_eq!(spec.eval_int(123), 0);
    }
}
