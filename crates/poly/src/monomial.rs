//! Monomials: exponent vectors with a fixed number of variables.

use std::fmt;

/// A monomial over `nvars` variables, stored as an exponent vector.
///
/// The `Ord` implementation is graded lexicographic (total degree first,
/// then lexicographic on exponents), which gives deterministic term
/// ordering in maps and printers.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Monomial(pub Vec<u32>);

impl Monomial {
    /// The constant monomial (all exponents zero) over `nvars` variables.
    pub fn one(nvars: usize) -> Self {
        Monomial(vec![0; nvars])
    }

    /// The monomial `x_var` over `nvars` variables.
    pub fn var(nvars: usize, var: usize) -> Self {
        assert!(var < nvars, "variable index {var} out of range {nvars}");
        let mut e = vec![0; nvars];
        e[var] = 1;
        Monomial(e)
    }

    /// Number of variables of the ambient ring.
    pub fn nvars(&self) -> usize {
        self.0.len()
    }

    /// Total degree (sum of exponents).
    pub fn total_degree(&self) -> u32 {
        self.0.iter().sum()
    }

    /// Exponent of variable `var`.
    pub fn exp(&self, var: usize) -> u32 {
        self.0[var]
    }

    /// Product of two monomials (exponent-wise sum).
    pub fn mul(&self, rhs: &Monomial) -> Monomial {
        debug_assert_eq!(self.0.len(), rhs.0.len());
        Monomial(
            self.0
                .iter()
                .zip(&rhs.0)
                .map(|(a, b)| a.checked_add(*b).expect("monomial degree overflow"))
                .collect(),
        )
    }

    /// Copy of this monomial with the exponent of `var` set to zero.
    pub fn without_var(&self, var: usize) -> Monomial {
        let mut e = self.0.clone();
        e[var] = 0;
        Monomial(e)
    }

    /// True iff every exponent is zero.
    pub fn is_constant(&self) -> bool {
        self.0.iter().all(|&e| e == 0)
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.total_degree()
            .cmp(&other.total_degree())
            .then_with(|| self.0.cmp(&other.0))
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .0
            .iter()
            .enumerate()
            .filter(|(_, &e)| e > 0)
            .map(|(v, &e)| {
                if e == 1 {
                    format!("x{v}")
                } else {
                    format!("x{v}^{e}")
                }
            })
            .collect();
        if parts.is_empty() {
            write!(f, "1")
        } else {
            write!(f, "{}", parts.join("*"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let m = Monomial::one(3);
        assert!(m.is_constant());
        assert_eq!(m.total_degree(), 0);
        let x1 = Monomial::var(3, 1);
        assert_eq!(x1.exp(1), 1);
        assert_eq!(x1.exp(0), 0);
        assert_eq!(x1.total_degree(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range() {
        let _ = Monomial::var(2, 2);
    }

    #[test]
    fn multiplication() {
        let a = Monomial(vec![1, 2, 0]);
        let b = Monomial(vec![0, 1, 3]);
        assert_eq!(a.mul(&b), Monomial(vec![1, 3, 3]));
    }

    #[test]
    fn ordering_is_graded() {
        let low = Monomial(vec![1, 0]); // degree 1
        let high = Monomial(vec![0, 2]); // degree 2
        assert!(low < high);
        // same degree: lexicographic on exponents
        let a = Monomial(vec![0, 2]);
        let b = Monomial(vec![1, 1]);
        assert!(a < b);
    }

    #[test]
    fn without_var() {
        let a = Monomial(vec![1, 2, 3]);
        assert_eq!(a.without_var(1), Monomial(vec![1, 0, 3]));
    }

    #[test]
    fn debug_rendering() {
        assert_eq!(format!("{:?}", Monomial(vec![0, 0])), "1");
        assert_eq!(format!("{:?}", Monomial(vec![1, 2])), "x0*x1^2");
    }
}
