//! Human-readable rendering of polynomials with named variables.

use crate::poly::Poly;
use std::fmt;

impl Poly {
    /// Renders the polynomial with the given variable names, highest
    /// total degree first, in a Maxima/C-like syntax:
    /// `(2*i*N + 2*j - i^2 - 3*i)/2` style fractions are *not* factored —
    /// each coefficient is shown as `a/b` when non-integer.
    pub fn to_string_with(&self, names: &[&str]) -> String {
        assert_eq!(names.len(), self.nvars(), "name arity mismatch");
        if self.is_zero() {
            return "0".to_string();
        }
        let mut parts: Vec<(bool, String)> = Vec::new(); // (negative, magnitude text)
        let mut terms: Vec<_> = self.terms().collect();
        terms.sort_by(|a, b| b.0.cmp(a.0)); // graded-lex descending
        for (m, c) in terms {
            let neg = c.signum() < 0;
            let mag = c.abs();
            let mut factors: Vec<String> = Vec::new();
            let coeff_is_one = mag == nrl_rational::Rational::ONE;
            if !coeff_is_one || m.is_constant() {
                factors.push(mag.to_string());
            }
            for (v, &e) in m.0.iter().enumerate() {
                match e {
                    0 => {}
                    1 => factors.push(names[v].to_string()),
                    _ => factors.push(format!("{}^{}", names[v], e)),
                }
            }
            parts.push((neg, factors.join("*")));
        }
        let mut out = String::new();
        for (idx, (neg, text)) in parts.iter().enumerate() {
            if idx == 0 {
                if *neg {
                    out.push('-');
                }
            } else if *neg {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            out.push_str(text);
        }
        out
    }

    /// Convenience rendering with `x0, x1, …` variable names.
    pub fn to_string_default(&self) -> String {
        let names: Vec<String> = (0..self.nvars()).map(|v| format!("x{v}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        self.to_string_with(&refs)
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_string_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrl_rational::Rational;

    #[test]
    fn renders_the_paper_ranking_polynomial() {
        // r(i, j) = i*N − 1/2*i² − 3/2*i + j (the expanded correlation rank
        // minus nothing; coefficients shown as fractions).
        let i = Poly::var(3, 0);
        let j = Poly::var(3, 1);
        let n = Poly::var(3, 2);
        let r = &i * &n + &j - i.pow(2).scale(Rational::new(1, 2)) - i.scale(Rational::new(3, 2));
        let s = r.to_string_with(&["i", "j", "N"]);
        assert_eq!(s, "-1/2*i^2 + i*N - 3/2*i + j");
    }

    #[test]
    fn renders_zero_and_constants() {
        assert_eq!(Poly::zero(2).to_string_with(&["a", "b"]), "0");
        assert_eq!(
            Poly::constant(2, Rational::new(-5, 3)).to_string_with(&["a", "b"]),
            "-5/3"
        );
    }

    #[test]
    fn renders_leading_negative() {
        let x = Poly::var(1, 0);
        let p = -x.pow(2) + &x;
        assert_eq!(p.to_string_with(&["x"]), "-x^2 + x");
    }

    #[test]
    fn renders_unit_coefficients_without_one() {
        let x = Poly::var(2, 0);
        let y = Poly::var(2, 1);
        let p = &x * &y + Poly::constant_int(2, 1);
        assert_eq!(p.to_string_with(&["x", "y"]), "x*y + 1");
    }
}
