//! Substitution of variables by polynomials.
//!
//! Loop collapsing substitutes affine bounds and lexicographic-minimum
//! continuations into ranking polynomials; both are instances of the
//! general polynomial substitution implemented here (via Horner's rule on
//! the univariate coefficient decomposition).

use crate::poly::Poly;

impl Poly {
    /// Replaces variable `var` by the polynomial `replacement` (over the
    /// same ambient ring).
    ///
    /// Uses Horner's scheme on the univariate decomposition:
    /// `p = Σ c_k·var^k  ⇒  p[var := q] = (…(c_d·q + c_{d-1})·q + …)·q + c_0`.
    pub fn substitute(&self, var: usize, replacement: &Poly) -> Poly {
        assert_eq!(
            self.nvars(),
            replacement.nvars(),
            "substitution arity mismatch"
        );
        let coeffs = self.univariate_coeffs(var);
        let mut acc = Poly::zero(self.nvars());
        for c in coeffs.iter().rev() {
            acc = &(&acc * replacement) + c;
        }
        acc
    }

    /// Substitutes several variables simultaneously.
    ///
    /// `subs` maps variable indices to replacement polynomials. The
    /// substitution is *simultaneous*: replacements are not re-substituted
    /// into each other. Implemented by expanding each term directly.
    pub fn substitute_all(&self, subs: &[(usize, Poly)]) -> Poly {
        for (v, q) in subs {
            assert!(*v < self.nvars(), "substitution variable out of range");
            assert_eq!(q.nvars(), self.nvars(), "substitution arity mismatch");
        }
        let mut out = Poly::zero(self.nvars());
        for (m, c) in self.terms() {
            // term = c · Π x_v^{e_v}; replace the substituted factors.
            let mut term = Poly::constant(self.nvars(), *c);
            let mut residual = m.0.clone();
            for (v, q) in subs {
                let e = residual[*v];
                if e > 0 {
                    residual[*v] = 0;
                    term = &term * &q.pow(e);
                }
            }
            let residual_mono = crate::monomial::Monomial(residual);
            let mut residual_poly = Poly::zero(self.nvars());
            residual_poly.add_term(residual_mono, nrl_rational::Rational::ONE);
            out += &(&term * &residual_poly);
        }
        out
    }

    /// Shrinks the ambient ring to `new_nvars`, dropping trailing
    /// variables.
    ///
    /// # Panics
    /// Panics if any dropped variable is actually used.
    pub fn shrink_vars(&self, new_nvars: usize) -> Poly {
        assert!(new_nvars <= self.nvars(), "shrink cannot grow the ring");
        let mut out = Poly::zero(new_nvars);
        for (m, c) in self.terms() {
            assert!(
                m.0[new_nvars..].iter().all(|&e| e == 0),
                "shrink_vars would drop a used variable"
            );
            out.add_term(crate::monomial::Monomial(m.0[..new_nvars].to_vec()), *c);
        }
        out
    }

    /// Renumbers variables into a (possibly larger) ring. `mapping[v]`
    /// gives the new index of old variable `v`.
    ///
    /// # Panics
    /// Panics if the mapping is not injective on used variables or maps
    /// out of range.
    pub fn remap_vars(&self, new_nvars: usize, mapping: &[usize]) -> Poly {
        assert_eq!(mapping.len(), self.nvars(), "mapping arity mismatch");
        let mut out = Poly::zero(new_nvars);
        for (m, c) in self.terms() {
            let mut exps = vec![0u32; new_nvars];
            for (v, &e) in m.0.iter().enumerate() {
                if e > 0 {
                    let nv = mapping[v];
                    assert!(nv < new_nvars, "remap target out of range");
                    assert_eq!(exps[nv], 0, "remap not injective on used variables");
                    exps[nv] = e;
                }
            }
            out.add_term(crate::monomial::Monomial(exps), *c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrl_rational::Rational;

    #[test]
    fn substitute_affine_into_quadratic() {
        // p(x, y) = x² + y; x := y + 1  ⇒  y² + 2y + 1 + y = y² + 3y + 1
        let x = Poly::var(2, 0);
        let y = Poly::var(2, 1);
        let p = x.pow(2) + &y;
        let q = &y + Poly::constant_int(2, 1);
        let s = p.substitute(0, &q);
        let expect = y.pow(2) + Poly::constant_int(2, 3) * &y + Poly::constant_int(2, 1);
        assert_eq!(s, expect);
    }

    #[test]
    fn substitute_matches_pointwise_eval() {
        let x = Poly::var(3, 0);
        let y = Poly::var(3, 1);
        let z = Poly::var(3, 2);
        let p = x.pow(3) + &x * &y + z.pow(2);
        let q = &y - &z + Poly::constant_int(3, 2);
        let s = p.substitute(0, &q);
        for yv in -3..3i128 {
            for zv in -3..3i128 {
                let xv = yv - zv + 2;
                assert_eq!(
                    s.eval_int(&[0, yv, zv]),
                    p.eval_int(&[xv, yv, zv]),
                    "y={yv} z={zv}"
                );
            }
        }
    }

    #[test]
    fn simultaneous_substitution_is_simultaneous() {
        // p = x·y with x := y, y := x simultaneously gives y·x (swap), not x².
        let x = Poly::var(2, 0);
        let y = Poly::var(2, 1);
        let p = &x * &y;
        let s = p.substitute_all(&[(0, y.clone()), (1, x.clone())]);
        assert_eq!(s, p);
        // and a genuinely asymmetric check: p = x² + y
        let p2 = x.pow(2) + &y;
        let s2 = p2.substitute_all(&[(0, y.clone()), (1, x.clone())]);
        assert_eq!(s2, y.pow(2) + &x);
    }

    #[test]
    fn substitute_into_constant_is_identity() {
        let p = Poly::constant(2, Rational::new(7, 3));
        let q = Poly::var(2, 1);
        assert_eq!(p.substitute(0, &q), p);
    }

    #[test]
    fn remap_vars_extends_ring() {
        // p(i, j) over 2 vars → p over 4 vars with i→2, j→0.
        let i = Poly::var(2, 0);
        let j = Poly::var(2, 1);
        let p = i.pow(2) + Poly::constant_int(2, 5) * &j;
        let q = p.remap_vars(4, &[2, 0]);
        assert_eq!(q.nvars(), 4);
        assert_eq!(q.eval_int(&[9, 0, 4, 0]), p.eval_int(&[4, 9]));
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn remap_rejects_collisions() {
        let p = Poly::var(2, 0) * Poly::var(2, 1);
        let _ = p.remap_vars(2, &[0, 0]);
    }
}
