//! [`IntPoly`]: denominator-cleared polynomials for the fast exact
//! run-time evaluation path.
//!
//! The index-recovery verification step evaluates ranking polynomials a
//! handful of times per chunk. Doing that through `Rational` would drag a
//! gcd through every term; instead we clear denominators once at
//! construction (`p = q / den` with `q` integer-coefficient) and evaluate
//! `q` in pure `i128`, dividing by `den` at the end with an exactness
//! check.

use crate::poly::Poly;
use nrl_rational::checked_pow_i128;

/// An integer-coefficient polynomial plus a positive denominator:
/// represents `(Σ c·monomial) / den` exactly.
#[derive(Clone, Debug)]
pub struct IntPoly {
    nvars: usize,
    den: i128,
    /// Flattened terms: (exponent vector, integer coefficient).
    terms: Vec<(Vec<u32>, i128)>,
}

impl IntPoly {
    /// Assembles from already-cleared parts (the parametric
    /// instantiation path — see [`crate::param::ParamCompiledPoly`]).
    pub(crate) fn from_parts(nvars: usize, den: i128, terms: Vec<(Vec<u32>, i128)>) -> Self {
        debug_assert!(den >= 1);
        IntPoly { nvars, den, terms }
    }

    /// Clears denominators of `p`.
    pub fn from_poly(p: &Poly) -> Self {
        let den = p.denominator_lcm();
        let mut terms = Vec::with_capacity(p.num_terms());
        for (m, c) in p.terms() {
            let scaled = c
                .numer()
                .checked_mul(den / c.denom())
                .expect("IntPoly scale overflow");
            terms.push((m.0.clone(), scaled));
        }
        IntPoly {
            nvars: p.nvars(),
            den,
            terms,
        }
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The common denominator (always ≥ 1).
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Evaluates the numerator polynomial at an integer point.
    pub fn eval_numer(&self, point: &[i64]) -> i128 {
        assert_eq!(point.len(), self.nvars, "evaluation arity mismatch");
        let mut acc: i128 = 0;
        for (exps, c) in &self.terms {
            let mut term = *c;
            for (v, &e) in exps.iter().enumerate() {
                if e > 0 {
                    term = term
                        .checked_mul(checked_pow_i128(point[v] as i128, e))
                        .expect("IntPoly evaluation overflow");
                }
            }
            acc = acc.checked_add(term).expect("IntPoly evaluation overflow");
        }
        acc
    }

    /// Exact integer evaluation of the full fraction.
    ///
    /// # Panics
    /// Panics if the value is not an integer at this point (indicates a
    /// point outside the lattice the polynomial was built for).
    pub fn eval_int(&self, point: &[i64]) -> i128 {
        self.checked_eval_int(point)
            .unwrap_or_else(|| panic!("IntPoly evaluated to a non-integer at {point:?}"))
    }

    /// Exact integer evaluation that reports non-integer values instead
    /// of panicking. The exactness check is unconditional: a release
    /// build must never silently truncate `numer / den`.
    pub fn checked_eval_int(&self, point: &[i64]) -> Option<i128> {
        let numer = self.eval_numer(point);
        if numer % self.den != 0 {
            return None;
        }
        Some(numer / self.den)
    }

    /// Floating-point evaluation (for the closed-form recovery path).
    /// Monomials use `powi` (exponentiation by squaring) rather than
    /// O(degree) repeated multiplication.
    pub fn eval_f64(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.nvars, "evaluation arity mismatch");
        let mut acc = 0.0f64;
        for (exps, c) in &self.terms {
            let mut term = *c as f64;
            for (v, &e) in exps.iter().enumerate() {
                match e {
                    0 => {}
                    1 => term *= point[v],
                    _ => term *= point[v].powi(e as i32),
                }
            }
            acc += term;
        }
        acc / self.den as f64
    }
}

impl From<&Poly> for IntPoly {
    fn from(p: &Poly) -> Self {
        IntPoly::from_poly(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrl_rational::Rational;

    fn correlation_rank() -> Poly {
        // r(i, j) over vars (i, j, N) = (2iN + 2j − i² − 3i)/2
        let i = Poly::var(3, 0);
        let j = Poly::var(3, 1);
        let n = Poly::var(3, 2);
        (Poly::constant_int(3, 2) * &i * &n + Poly::constant_int(3, 2) * &j
            - i.pow(2)
            - Poly::constant_int(3, 3) * &i)
            .scale(Rational::new(1, 2))
    }

    #[test]
    fn matches_rational_evaluation() {
        let p = correlation_rank();
        let ip = IntPoly::from_poly(&p);
        assert_eq!(ip.denominator(), 2);
        for n in 2..20i64 {
            for i in 0..n - 1 {
                for j in i + 1..n {
                    assert_eq!(
                        ip.eval_int(&[i, j, n]),
                        p.eval_int(&[i as i128, j as i128, n as i128])
                    );
                }
            }
        }
    }

    #[test]
    fn zero_poly() {
        let ip = IntPoly::from_poly(&Poly::zero(2));
        assert_eq!(ip.denominator(), 1);
        assert_eq!(ip.eval_int(&[3, 4]), 0);
    }

    #[test]
    fn f64_eval_tracks_exact() {
        let p = correlation_rank();
        let ip = IntPoly::from_poly(&p);
        let exact = ip.eval_int(&[500, 900, 1000]) as f64;
        let approx = ip.eval_f64(&[500.0, 900.0, 1000.0]);
        assert!((exact - approx).abs() <= 1e-6 * exact.abs());
    }

    #[test]
    fn non_integer_value_is_rejected_unconditionally() {
        // p = x/2: non-integer at odd x. The exactness check must hold
        // in every build profile, not just under debug assertions.
        let p = Poly::var(1, 0).scale(Rational::new(1, 2));
        let ip = IntPoly::from_poly(&p);
        assert_eq!(ip.checked_eval_int(&[4]), Some(2));
        assert_eq!(ip.checked_eval_int(&[3]), None);
        let panicked = std::panic::catch_unwind(|| ip.eval_int(&[3]));
        assert!(
            panicked.is_err(),
            "eval_int must panic on non-integer values"
        );
    }

    #[test]
    fn integer_poly_has_denominator_one() {
        let p = Poly::affine(2, &[3, -4], 7);
        let ip = IntPoly::from_poly(&p);
        assert_eq!(ip.denominator(), 1);
        assert_eq!(ip.eval_int(&[2, 1]), 3 * 2 - 4 + 7);
    }
}
