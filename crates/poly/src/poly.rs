//! The [`Poly`] type: exact multivariate polynomials and ring arithmetic.

use crate::monomial::Monomial;
use nrl_rational::Rational;
use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A multivariate polynomial with [`Rational`] coefficients over a fixed
/// number of variables.
///
/// The invariant is that `terms` never stores a zero coefficient, so the
/// zero polynomial has an empty term map and structural equality is
/// mathematical equality.
#[derive(Clone, PartialEq, Eq)]
pub struct Poly {
    nvars: usize,
    terms: BTreeMap<Monomial, Rational>,
}

impl Poly {
    /// The zero polynomial over `nvars` variables.
    pub fn zero(nvars: usize) -> Self {
        Poly {
            nvars,
            terms: BTreeMap::new(),
        }
    }

    /// The constant polynomial `c`.
    pub fn constant(nvars: usize, c: Rational) -> Self {
        let mut p = Poly::zero(nvars);
        if !c.is_zero() {
            p.terms.insert(Monomial::one(nvars), c);
        }
        p
    }

    /// The constant polynomial from an integer.
    pub fn constant_int(nvars: usize, c: i128) -> Self {
        Poly::constant(nvars, Rational::from_int(c))
    }

    /// The polynomial `x_var`.
    pub fn var(nvars: usize, var: usize) -> Self {
        let mut p = Poly::zero(nvars);
        p.terms.insert(Monomial::var(nvars, var), Rational::ONE);
        p
    }

    /// Builds a polynomial from `(monomial, coefficient)` pairs.
    ///
    /// # Panics
    /// Panics if any monomial has a different variable count.
    pub fn from_terms(nvars: usize, terms: impl IntoIterator<Item = (Monomial, Rational)>) -> Self {
        let mut p = Poly::zero(nvars);
        for (m, c) in terms {
            assert_eq!(m.nvars(), nvars, "monomial arity mismatch");
            p.add_term(m, c);
        }
        p
    }

    /// An affine polynomial `Σ coeffs[v]·x_v + constant`.
    pub fn affine(nvars: usize, coeffs: &[i128], constant: i128) -> Self {
        assert!(coeffs.len() <= nvars, "too many affine coefficients");
        let mut p = Poly::constant_int(nvars, constant);
        for (v, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                p.add_term(Monomial::var(nvars, v), Rational::from_int(c));
            }
        }
        p
    }

    /// Number of variables of the ambient ring.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Iterator over `(monomial, coefficient)` pairs in graded-lex order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &Rational)> {
        self.terms.iter()
    }

    /// Number of non-zero terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// If the polynomial is constant, returns the constant.
    pub fn as_constant(&self) -> Option<Rational> {
        match self.terms.len() {
            0 => Some(Rational::ZERO),
            1 => {
                let (m, c) = self.terms.iter().next().unwrap();
                m.is_constant().then_some(*c)
            }
            _ => None,
        }
    }

    /// Total degree (0 for the zero polynomial).
    pub fn total_degree(&self) -> u32 {
        self.terms
            .keys()
            .map(Monomial::total_degree)
            .max()
            .unwrap_or(0)
    }

    /// Degree in a single variable (0 for the zero polynomial).
    pub fn degree_in(&self, var: usize) -> u32 {
        self.terms.keys().map(|m| m.exp(var)).max().unwrap_or(0)
    }

    /// Coefficient of the given monomial (zero if absent).
    pub fn coeff(&self, m: &Monomial) -> Rational {
        self.terms.get(m).copied().unwrap_or(Rational::ZERO)
    }

    /// Adds `c·m` into the polynomial, maintaining the no-zero invariant.
    pub fn add_term(&mut self, m: Monomial, c: Rational) {
        if c.is_zero() {
            return;
        }
        use std::collections::btree_map::Entry;
        match self.terms.entry(m) {
            Entry::Vacant(e) => {
                e.insert(c);
            }
            Entry::Occupied(mut e) => {
                let sum = *e.get() + c;
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
        }
    }

    /// Multiplies every coefficient by `c`.
    pub fn scale(&self, c: Rational) -> Poly {
        if c.is_zero() {
            return Poly::zero(self.nvars);
        }
        Poly {
            nvars: self.nvars,
            terms: self
                .terms
                .iter()
                .map(|(m, k)| (m.clone(), *k * c))
                .collect(),
        }
    }

    /// `self^exp` by repeated multiplication (degrees stay small here).
    pub fn pow(&self, exp: u32) -> Poly {
        let mut acc = Poly::constant(self.nvars, Rational::ONE);
        for _ in 0..exp {
            acc = &acc * self;
        }
        acc
    }

    /// Extracts the polynomial as univariate in `var`: returns the
    /// coefficient polynomials of `var^0, var^1, …, var^d`, each free of
    /// `var`.
    pub fn univariate_coeffs(&self, var: usize) -> Vec<Poly> {
        let d = self.degree_in(var) as usize;
        let mut out = vec![Poly::zero(self.nvars); d + 1];
        for (m, c) in &self.terms {
            let k = m.exp(var) as usize;
            out[k].add_term(m.without_var(var), *c);
        }
        out
    }

    /// Least common multiple of all coefficient denominators
    /// (1 for the zero polynomial).
    pub fn denominator_lcm(&self) -> i128 {
        self.terms
            .values()
            .fold(1i128, |acc, c| nrl_rational::lcm_i128(acc, c.denom()))
    }

    /// Formal derivative with respect to `var`.
    pub fn derivative(&self, var: usize) -> Poly {
        let mut out = Poly::zero(self.nvars);
        for (m, c) in &self.terms {
            let e = m.exp(var);
            if e == 0 {
                continue;
            }
            let mut exps = m.0.clone();
            exps[var] -= 1;
            out.add_term(Monomial(exps), *c * Rational::from_int(e as i128));
        }
        out
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        assert_eq!(self.nvars, rhs.nvars, "polynomial arity mismatch");
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), *c);
        }
        out
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        assert_eq!(self.nvars, rhs.nvars, "polynomial arity mismatch");
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), -*c);
        }
        out
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        assert_eq!(self.nvars, rhs.nvars, "polynomial arity mismatch");
        let mut out = Poly::zero(self.nvars);
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                out.add_term(ma.mul(mb), *ca * *cb);
            }
        }
        out
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(-Rational::ONE)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Poly {
            type Output = Poly;
            fn $method(self, rhs: Poly) -> Poly {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Poly> for Poly {
            type Output = Poly;
            fn $method(self, rhs: &Poly) -> Poly {
                (&self).$method(rhs)
            }
        }
        impl $trait<Poly> for &Poly {
            type Output = Poly;
            fn $method(self, rhs: Poly) -> Poly {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        -&self
    }
}

impl AddAssign<&Poly> for Poly {
    fn add_assign(&mut self, rhs: &Poly) {
        assert_eq!(self.nvars, rhs.nvars, "polynomial arity mismatch");
        for (m, c) in &rhs.terms {
            self.add_term(m.clone(), *c);
        }
    }
}

impl SubAssign<&Poly> for Poly {
    fn sub_assign(&mut self, rhs: &Poly) {
        assert_eq!(self.nvars, rhs.nvars, "polynomial arity mismatch");
        for (m, c) in &rhs.terms {
            self.add_term(m.clone(), -*c);
        }
    }
}

impl MulAssign<&Poly> for Poly {
    fn mul_assign(&mut self, rhs: &Poly) {
        *self = &*self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn zero_and_constant() {
        let z = Poly::zero(2);
        assert!(z.is_zero());
        assert_eq!(z.as_constant(), Some(Rational::ZERO));
        let c = Poly::constant(2, r(3, 4));
        assert_eq!(c.as_constant(), Some(r(3, 4)));
        assert_eq!(c.total_degree(), 0);
        assert!(Poly::constant(2, Rational::ZERO).is_zero());
    }

    #[test]
    fn affine_construction() {
        // 2x - 3y + 5 over (x, y)
        let p = Poly::affine(2, &[2, -3], 5);
        assert_eq!(p.num_terms(), 3);
        assert_eq!(p.degree_in(0), 1);
        assert_eq!(p.degree_in(1), 1);
        assert_eq!(p.coeff(&Monomial::one(2)), r(5, 1));
    }

    #[test]
    fn add_cancels() {
        let x = Poly::var(2, 0);
        let p = &x + &x;
        assert_eq!(p.coeff(&Monomial::var(2, 0)), r(2, 1));
        let q = &p - &p;
        assert!(q.is_zero());
    }

    #[test]
    fn multiplication_expands() {
        // (x + y)^2 = x^2 + 2xy + y^2
        let x = Poly::var(2, 0);
        let y = Poly::var(2, 1);
        let s = &x + &y;
        let sq = s.pow(2);
        assert_eq!(sq.coeff(&Monomial(vec![2, 0])), r(1, 1));
        assert_eq!(sq.coeff(&Monomial(vec![1, 1])), r(2, 1));
        assert_eq!(sq.coeff(&Monomial(vec![0, 2])), r(1, 1));
        assert_eq!(sq.num_terms(), 3);
        assert_eq!(sq.total_degree(), 2);
    }

    #[test]
    fn pow_zero_is_one() {
        let x = Poly::var(1, 0);
        assert_eq!(x.pow(0).as_constant(), Some(Rational::ONE));
    }

    #[test]
    fn univariate_coeffs_roundtrip() {
        // p = 3x^2 y + x y + 7y^2 + 2, as univariate in x:
        // [7y^2 + 2, y, 3y]
        let x = Poly::var(2, 0);
        let y = Poly::var(2, 1);
        let p = Poly::constant_int(2, 3) * x.pow(2) * &y
            + &x * &y
            + Poly::constant_int(2, 7) * y.pow(2)
            + Poly::constant_int(2, 2);
        let coeffs = p.univariate_coeffs(0);
        assert_eq!(coeffs.len(), 3);
        assert_eq!(coeffs[1], y.clone());
        assert_eq!(coeffs[2], Poly::constant_int(2, 3) * &y);
        // reassemble Σ c_k x^k
        let mut back = Poly::zero(2);
        for (k, c) in coeffs.iter().enumerate() {
            back += &(c * &x.pow(k as u32));
        }
        assert_eq!(back, p);
    }

    #[test]
    fn derivative_power_rule() {
        // d/dx (x^3 + 2x y) = 3x^2 + 2y
        let x = Poly::var(2, 0);
        let y = Poly::var(2, 1);
        let p = x.pow(3) + Poly::constant_int(2, 2) * &x * &y;
        let d = p.derivative(0);
        let expect = Poly::constant_int(2, 3) * x.pow(2) + Poly::constant_int(2, 2) * &y;
        assert_eq!(d, expect);
    }

    #[test]
    fn denominator_lcm() {
        let p = Poly::constant(1, r(1, 6)) * Poly::var(1, 0) + Poly::constant(1, r(1, 4));
        assert_eq!(p.denominator_lcm(), 12);
        assert_eq!(Poly::zero(3).denominator_lcm(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = Poly::var(2, 0) + Poly::var(3, 0);
    }
}
