//! [`LaneHorner`]: lane-parallel Horner evaluation of a specialized
//! ladder (the §VI.A/§VI.B batched-recovery evaluator).
//!
//! Batched index recovery amortizes work across a *vector* of
//! iterations: whole blocks of probe values `x₀, x₀+s, x₀+2s, …` are
//! evaluated against one flat `[i128; deg+1]` ladder at once, instead
//! of one scalar Horner sweep per probe. Because the ladder is already
//! dense and prefix-folded (see [`SpecializedPoly`]), the lane sweep is
//! a fixed-stride loop over plain `i64` fixed-size arrays — the layout
//! LLVM auto-vectorizes into 4/8-wide SIMD lanes — with **no per-lane
//! branches** inside the Horner recurrence.
//!
//! The unchecked `i64` lane path is gated by the same bind-time
//! interval-analysis proof as the scalar fast path
//! ([`SpecializedPoly::i64_fast_path`]): the caller's
//! [`magnitude_bound`](crate::CompiledPoly::magnitude_bound) proof
//! covers every probe `|x| ≤ x_abs`, so plain (wrapping-in-release)
//! arithmetic cannot overflow. Debug builds keep Rust's overflow
//! checks on this path — the CI debug-profile matrix leg exercises
//! exactly that. Unproven ladders fall back to the checked `i128`
//! scalar sweep per lane.

use crate::compiled::SpecializedPoly;

/// Widest lane block of the `i64` fast path (one sweep evaluates up to
/// this many x-values at once before the 4-wide and scalar tails).
pub const LANE_WIDTH: usize = 8;

/// A lane-parallel evaluator borrowing one specialized ladder.
///
/// Construction is free; create one per recovery (or per sweep) and
/// call [`eval_numer_into`](Self::eval_numer_into) with any block size.
#[derive(Clone, Copy, Debug)]
pub struct LaneHorner<'a> {
    spec: &'a SpecializedPoly,
}

impl<'a> LaneHorner<'a> {
    /// Borrows the ladder to sweep.
    #[inline]
    pub fn new(spec: &'a SpecializedPoly) -> Self {
        LaneHorner { spec }
    }

    /// Evaluates the numerator at the `out.len()` x-values
    /// `x0, x0+stride, x0+2·stride, …` in one fixed-stride sweep,
    /// writing `numer(x0 + l·stride)` into `out[l]`.
    ///
    /// On the proven-`i64` path every probe must satisfy the caller's
    /// magnitude proof (the same contract as
    /// [`SpecializedPoly::eval_numer`]): in recovery that means all
    /// lanes stay within `[lb, ub+1]` of the level being probed.
    pub fn eval_numer_into(&self, x0: i64, stride: i64, out: &mut [i128]) {
        if !self.spec.i64_fast_path() {
            // Checked i128 fallback, lane by lane.
            for (l, slot) in out.iter_mut().enumerate() {
                *slot = self.spec.eval_numer(x0 + l as i64 * stride);
            }
            return;
        }
        let mut done = 0;
        while out.len() - done >= LANE_WIDTH {
            let block = self.block_i64::<LANE_WIDTH>(x0 + done as i64 * stride, stride);
            for (slot, v) in out[done..done + LANE_WIDTH].iter_mut().zip(block) {
                *slot = v as i128;
            }
            done += LANE_WIDTH;
        }
        if out.len() - done >= 4 {
            let block = self.block_i64::<4>(x0 + done as i64 * stride, stride);
            for (slot, v) in out[done..done + 4].iter_mut().zip(block) {
                *slot = v as i128;
            }
            done += 4;
        }
        for (l, slot) in out[done..].iter_mut().enumerate() {
            *slot = self.spec.eval_numer(x0 + (done + l) as i64 * stride);
        }
    }

    /// Exact integer values (numerator / denominator) at the swept
    /// x-values — the batched form of [`SpecializedPoly::eval_int`].
    ///
    /// # Panics
    /// Panics if any swept value is not an integer (probe outside the
    /// lattice the polynomial counts).
    pub fn eval_int_into(&self, x0: i64, stride: i64, out: &mut [i128]) {
        self.eval_numer_into(x0, stride, out);
        let den = self.spec.denominator();
        if den == 1 {
            return;
        }
        for (l, slot) in out.iter_mut().enumerate() {
            assert!(
                *slot % den == 0,
                "LaneHorner swept a non-integer value at x={}",
                x0 + l as i64 * stride
            );
            *slot /= den;
        }
    }

    /// One `W`-wide unchecked-`i64` Horner block: a branch-free
    /// fixed-stride recurrence over `[i64; W]` accumulators (the shape
    /// the auto-vectorizer turns into SIMD lanes). Release builds rely
    /// on the caller's overflow proof; debug builds keep overflow
    /// checks on.
    #[inline]
    fn block_i64<const W: usize>(&self, x0: i64, stride: i64) -> [i64; W] {
        let deg = self.spec.degree();
        let mut x = [0i64; W];
        for (l, slot) in x.iter_mut().enumerate() {
            *slot = x0 + l as i64 * stride;
        }
        let mut acc = [self.spec.coeff(deg) as i64; W];
        let mut j = deg;
        while j > 0 {
            j -= 1;
            let c = self.spec.coeff(j) as i64;
            for l in 0..W {
                acc[l] = acc[l] * x[l] + c;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledPoly;
    use crate::poly::Poly;
    use nrl_rational::Rational;

    /// (2iN + 2j − i² − 3i)/2 — the correlation ranking polynomial.
    fn correlation_rank() -> Poly {
        let i = Poly::var(3, 0);
        let j = Poly::var(3, 1);
        let n = Poly::var(3, 2);
        (Poly::constant_int(3, 2) * &i * &n + Poly::constant_int(3, 2) * &j
            - i.pow(2)
            - Poly::constant_int(3, 3) * &i)
            .scale(Rational::new(1, 2))
    }

    #[test]
    fn lane_sweep_matches_scalar_every_count_and_stride() {
        let p = correlation_rank();
        let cp = CompiledPoly::lower(&p, 0).unwrap();
        let i64_ok = cp
            .magnitude_bound(&[1001, 1001, 1001], 1001)
            .is_some_and(|b| b <= i64::MAX as i128);
        assert!(i64_ok, "small domain must prove the i64 lane path");
        let spec = cp.specialize(&[0, 700, 1000], true);
        let lanes = LaneHorner::new(&spec);
        for count in [0usize, 1, 3, 4, 7, 8, 9, 17, 64] {
            for stride in [1i64, 3, 64] {
                let mut out = vec![0i128; count];
                lanes.eval_numer_into(5, stride, &mut out);
                for (l, &got) in out.iter().enumerate() {
                    assert_eq!(
                        got,
                        spec.eval_numer(5 + l as i64 * stride),
                        "count={count} stride={stride} lane={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn checked_fallback_matches_fast_path() {
        let p = correlation_rank();
        let cp = CompiledPoly::lower(&p, 0).unwrap();
        let fast = cp.specialize(&[0, 700, 1000], true);
        let checked = cp.specialize(&[0, 700, 1000], false);
        let mut a = [0i128; 13];
        let mut b = [0i128; 13];
        LaneHorner::new(&fast).eval_numer_into(-3, 2, &mut a);
        LaneHorner::new(&checked).eval_numer_into(-3, 2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn eval_int_divides_exactly() {
        let p = correlation_rank();
        // Univariate in j: linear, den 2, integer at lattice points.
        let cp = CompiledPoly::lower(&p, 1).unwrap();
        let spec = cp.specialize(&[4, 0, 100], false);
        let mut out = [0i128; 6];
        LaneHorner::new(&spec).eval_int_into(5, 1, &mut out);
        for (l, &got) in out.iter().enumerate() {
            assert_eq!(got, spec.eval_int(5 + l as i64), "lane {l}");
        }
    }

    #[test]
    fn degree_zero_ladders_sweep() {
        let cp = CompiledPoly::lower(&Poly::constant_int(2, 7), 0).unwrap();
        let spec = cp.specialize(&[0, 0], false);
        let mut out = [0i128; 9];
        LaneHorner::new(&spec).eval_numer_into(-4, 3, &mut out);
        assert!(out.iter().all(|&v| v == 7));
    }
}
