//! Symbolic expression trees for the generated recovery code.
//!
//! These are the expressions the paper prints in its Figs. 3, 4 and 7 —
//! nested arithmetic with square/cube roots over complex intermediates.
//! [`SymExpr`] supports exact construction from polynomials, numeric
//! evaluation through [`Complex64`] (to select root branches and to test
//! the emitted formulas), and printing as C (with `csqrt`/`cpow`/
//! `creal`) or Rust (with our `Complex64` API).

use nrl_poly::Poly;
use nrl_rational::Rational;
use nrl_solver::Complex64;
use std::collections::HashMap;
use std::fmt;

/// A symbolic arithmetic expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SymExpr {
    /// Rational constant.
    Rat(Rational),
    /// Named variable (`pc`, a parameter, or an outer iterator).
    Var(String),
    /// Sum of the operands.
    Add(Vec<SymExpr>),
    /// Product of the operands.
    Mul(Vec<SymExpr>),
    /// Negation.
    Neg(Box<SymExpr>),
    /// Quotient.
    Div(Box<SymExpr>, Box<SymExpr>),
    /// Integer power (exponent ≥ 0).
    Pow(Box<SymExpr>, u32),
    /// Principal (complex) square root.
    Sqrt(Box<SymExpr>),
    /// Principal (complex) cube root.
    Cbrt(Box<SymExpr>),
    /// Real part.
    Re(Box<SymExpr>),
    /// Floor of the (real) value.
    Floor(Box<SymExpr>),
}

impl SymExpr {
    /// Integer constant helper.
    pub fn int(n: i128) -> SymExpr {
        SymExpr::Rat(Rational::from_int(n))
    }

    /// Variable helper.
    pub fn var(name: &str) -> SymExpr {
        SymExpr::Var(name.to_string())
    }

    /// Builds a [`SymExpr`] from a polynomial, naming variable `v` as
    /// `names[v]`.
    pub fn from_poly(p: &Poly, names: &[&str]) -> SymExpr {
        assert_eq!(names.len(), p.nvars(), "name arity mismatch");
        let mut terms = Vec::new();
        for (m, c) in p.terms() {
            let mut factors = vec![SymExpr::Rat(*c)];
            for (v, &e) in m.0.iter().enumerate() {
                match e {
                    0 => {}
                    1 => factors.push(SymExpr::var(names[v])),
                    _ => factors.push(SymExpr::Pow(Box::new(SymExpr::var(names[v])), e)),
                }
            }
            terms.push(if factors.len() == 1 {
                factors.pop().expect("nonempty")
            } else {
                SymExpr::Mul(factors)
            });
        }
        match terms.len() {
            0 => SymExpr::int(0),
            1 => terms.pop().expect("nonempty"),
            _ => SymExpr::Add(terms),
        }
    }

    /// Numeric evaluation with complex intermediates.
    pub fn eval(&self, bindings: &HashMap<String, f64>) -> Complex64 {
        match self {
            SymExpr::Rat(r) => Complex64::real(r.to_f64()),
            SymExpr::Var(v) => Complex64::real(
                *bindings
                    .get(v)
                    .unwrap_or_else(|| panic!("unbound variable {v:?}")),
            ),
            SymExpr::Add(ts) => ts
                .iter()
                .fold(Complex64::ZERO, |acc, t| acc + t.eval(bindings)),
            SymExpr::Mul(ts) => ts
                .iter()
                .fold(Complex64::ONE, |acc, t| acc * t.eval(bindings)),
            SymExpr::Neg(t) => -t.eval(bindings),
            SymExpr::Div(a, b) => a.eval(bindings) / b.eval(bindings),
            SymExpr::Pow(t, e) => t.eval(bindings).powi(*e as i32),
            SymExpr::Sqrt(t) => t.eval(bindings).sqrt(),
            SymExpr::Cbrt(t) => t.eval(bindings).cbrt(),
            SymExpr::Re(t) => Complex64::real(t.eval(bindings).re),
            SymExpr::Floor(t) => Complex64::real(t.eval(bindings).re.floor()),
        }
    }

    /// True iff the expression contains a `Sqrt`/`Cbrt` (and therefore
    /// needs complex arithmetic in the generated code — §IV-C).
    pub fn needs_complex(&self) -> bool {
        match self {
            SymExpr::Sqrt(_) | SymExpr::Cbrt(_) => true,
            SymExpr::Rat(_) | SymExpr::Var(_) => false,
            SymExpr::Add(ts) | SymExpr::Mul(ts) => ts.iter().any(SymExpr::needs_complex),
            SymExpr::Neg(t) | SymExpr::Pow(t, _) | SymExpr::Re(t) | SymExpr::Floor(t) => {
                t.needs_complex()
            }
            SymExpr::Div(a, b) => a.needs_complex() || b.needs_complex(),
        }
    }

    /// Emits C source. When `complex` is true, roots become
    /// `csqrt`/`cpow(..., 1.0/3.0)` and numeric leaves are cast to
    /// `double` (matching the paper's Fig. 7 output style); otherwise
    /// `sqrt`/`cbrt` are used.
    pub fn to_c(&self, complex: bool) -> String {
        match self {
            SymExpr::Rat(r) => {
                if r.is_integer() {
                    format!("{}", r.numer())
                } else {
                    format!("({}.0/{}.0)", r.numer(), r.denom())
                }
            }
            SymExpr::Var(v) => format!("(double){v}"),
            SymExpr::Add(ts) => {
                let parts: Vec<String> = ts.iter().map(|t| t.to_c(complex)).collect();
                format!("({})", parts.join(" + "))
            }
            SymExpr::Mul(ts) => {
                let parts: Vec<String> = ts.iter().map(|t| t.to_c(complex)).collect();
                format!("({})", parts.join("*"))
            }
            SymExpr::Neg(t) => format!("(-{})", t.to_c(complex)),
            SymExpr::Div(a, b) => format!("({}/{})", a.to_c(complex), b.to_c(complex)),
            SymExpr::Pow(t, e) => {
                let f = if complex { "cpow" } else { "pow" };
                format!("{f}({}, {}.0)", t.to_c(complex), e)
            }
            SymExpr::Sqrt(t) => {
                let f = if complex { "csqrt" } else { "sqrt" };
                format!("{f}({})", t.to_c(complex))
            }
            SymExpr::Cbrt(t) => {
                if complex {
                    format!("cpow({}, 1.0/3.0)", t.to_c(true))
                } else {
                    format!("cbrt({})", t.to_c(false))
                }
            }
            SymExpr::Re(t) => format!("creal({})", t.to_c(true)),
            SymExpr::Floor(t) => format!("floor({})", t.to_c(complex)),
        }
    }

    /// Emits Rust source over `nrl_solver::Complex64` (variables are
    /// assumed bound as `f64` locals; the expression value is `Complex64`
    /// unless wrapped in `Re`/`Floor`, which produce `f64`).
    pub fn to_rust(&self) -> String {
        match self {
            SymExpr::Rat(r) => {
                if r.is_integer() {
                    format!("c({}.0)", r.numer())
                } else {
                    format!("c({}.0 / {}.0)", r.numer(), r.denom())
                }
            }
            SymExpr::Var(v) => format!("c({v})"),
            SymExpr::Add(ts) => {
                let parts: Vec<String> = ts.iter().map(SymExpr::to_rust).collect();
                format!("({})", parts.join(" + "))
            }
            SymExpr::Mul(ts) => {
                let parts: Vec<String> = ts.iter().map(SymExpr::to_rust).collect();
                format!("({})", parts.join(" * "))
            }
            SymExpr::Neg(t) => format!("(-{})", t.to_rust()),
            SymExpr::Div(a, b) => format!("({} / {})", a.to_rust(), b.to_rust()),
            SymExpr::Pow(t, e) => format!("{}.powi({e})", t.to_rust()),
            SymExpr::Sqrt(t) => format!("{}.sqrt()", t.to_rust()),
            SymExpr::Cbrt(t) => format!("{}.cbrt()", t.to_rust()),
            SymExpr::Re(t) => format!("{}.re", t.to_rust()),
            SymExpr::Floor(t) => format!("({}).floor()", t.to_rust()),
        }
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_c(self.needs_complex()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn eval_basic_arithmetic() {
        // (2x + 1)² / 3
        let e = SymExpr::Div(
            Box::new(SymExpr::Pow(
                Box::new(SymExpr::Add(vec![
                    SymExpr::Mul(vec![SymExpr::int(2), SymExpr::var("x")]),
                    SymExpr::int(1),
                ])),
                2,
            )),
            Box::new(SymExpr::int(3)),
        );
        let v = e.eval(&bind(&[("x", 4.0)]));
        assert!((v.re - 27.0).abs() < 1e-12);
        assert_eq!(v.im, 0.0);
    }

    #[test]
    fn sqrt_of_negative_stays_finite() {
        let e = SymExpr::Sqrt(Box::new(SymExpr::int(-4)));
        let v = e.eval(&HashMap::new());
        assert!((v.im - 2.0).abs() < 1e-12);
        assert!(e.needs_complex());
    }

    #[test]
    fn from_poly_matches_polynomial_eval() {
        // r(i, j) over (i, j, N) = (2iN + 2j − i² − 3i)/2
        let i = Poly::var(3, 0);
        let j = Poly::var(3, 1);
        let n = Poly::var(3, 2);
        let r = (Poly::constant_int(3, 2) * &i * &n + Poly::constant_int(3, 2) * &j
            - i.pow(2)
            - Poly::constant_int(3, 3) * &i)
            .scale(Rational::new(1, 2));
        let e = SymExpr::from_poly(&r, &["i", "j", "N"]);
        for (iv, jv, nv) in [(0i64, 1i64, 10i64), (3, 7, 10), (5, 9, 12)] {
            let sym = e.eval(&bind(&[
                ("i", iv as f64),
                ("j", jv as f64),
                ("N", nv as f64),
            ]));
            let exact = r.eval_int(&[iv as i128, jv as i128, nv as i128]) as f64;
            assert!((sym.re - exact).abs() < 1e-9, "({iv},{jv},{nv})");
        }
    }

    #[test]
    fn c_rendering_of_paper_style_formula() {
        // floor(−(sqrt(X) − 2N + 1)/2) renders with sqrt and floor.
        let e = SymExpr::Floor(Box::new(SymExpr::Div(
            Box::new(SymExpr::Neg(Box::new(SymExpr::Add(vec![
                SymExpr::Sqrt(Box::new(SymExpr::var("X"))),
                SymExpr::Mul(vec![SymExpr::int(-2), SymExpr::var("N")]),
                SymExpr::int(1),
            ])))),
            Box::new(SymExpr::int(2)),
        )));
        let c = e.to_c(false);
        assert!(c.contains("floor("));
        assert!(c.contains("sqrt("));
        let c_complex = e.to_c(true);
        assert!(c_complex.contains("csqrt("));
    }

    #[test]
    fn rust_rendering_compiles_shape() {
        let e = SymExpr::Re(Box::new(SymExpr::Cbrt(Box::new(SymExpr::var("q")))));
        assert_eq!(e.to_rust(), "c(q).cbrt().re");
    }

    #[test]
    fn needs_complex_detection() {
        assert!(!SymExpr::var("x").needs_complex());
        assert!(!SymExpr::Add(vec![SymExpr::int(1), SymExpr::var("y")]).needs_complex());
        assert!(SymExpr::Cbrt(Box::new(SymExpr::int(5))).needs_complex());
    }
}
