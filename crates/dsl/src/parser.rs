//! Recursive-descent parser for the loop-nest mini-language.
//!
//! Grammar (whitespace/comments ignored):
//!
//! ```text
//! program := "params" ident ("," ident)* ";" loop+ body?
//! loop    := "for" "(" ident "=" expr ";" ident ("<" | "<=") expr ";"
//!            ident "++" ")"
//! body    := "{" raw source "}"       (captured verbatim)
//! expr    := term (("+" | "-") term)*
//! term    := factor ("*" factor)*
//! factor  := int | ident | "(" expr ")" | "-" factor
//! ```

use crate::ast::{Expr, LoopAst, ProgramAst};
use crate::token::{lex, LexError, Spanned, Token};
use std::fmt;

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexing failed.
    Lex(LexError),
    /// Unexpected token (expected, found, offset).
    Unexpected {
        /// What the parser needed.
        expected: String,
        /// What it found (`None` = end of input).
        found: Option<Token>,
        /// Byte offset.
        offset: usize,
    },
    /// The loop header's three iterator occurrences disagree.
    InconsistentIterator {
        /// The loop variable from the init clause.
        declared: String,
        /// The mismatching occurrence.
        found: String,
    },
    /// No loops in the program.
    NoLoops,
    /// Unbalanced braces in the body.
    UnbalancedBody,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                expected,
                found,
                offset,
            } => match found {
                Some(t) => write!(f, "expected {expected}, found {t:?} at offset {offset}"),
                None => write!(f, "expected {expected}, found end of input"),
            },
            ParseError::InconsistentIterator { declared, found } => write!(
                f,
                "loop header mixes iterators: declared {declared:?}, found {found:?}"
            ),
            ParseError::NoLoops => write!(f, "program contains no loops"),
            ParseError::UnbalancedBody => write!(f, "unbalanced braces in loop body"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        let offset = self.offset();
        match self.bump() {
            Some(t) if &t == want => Ok(()),
            found => Err(ParseError::Unexpected {
                expected: what.to_string(),
                found,
                offset,
            }),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        let offset = self.offset();
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            found => Err(ParseError::Unexpected {
                expected: what.to_string(),
                found,
                offset,
            }),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let offset = self.offset();
        match self.bump() {
            Some(Token::Ident(s)) if s == kw => Ok(()),
            found => Err(ParseError::Unexpected {
                expected: format!("keyword {kw:?}"),
                found,
                offset,
            }),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.parse_term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.bump();
                    acc = Expr::Add(Box::new(acc), Box::new(self.parse_term()?));
                }
                Some(Token::Minus) => {
                    self.bump();
                    acc = Expr::Sub(Box::new(acc), Box::new(self.parse_term()?));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.parse_factor()?;
        while self.peek() == Some(&Token::Star) {
            self.bump();
            acc = Expr::Mul(Box::new(acc), Box::new(self.parse_factor()?));
        }
        Ok(acc)
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        let offset = self.offset();
        match self.bump() {
            Some(Token::Int(n)) => Ok(Expr::Int(n)),
            Some(Token::Ident(s)) => Ok(Expr::Var(s)),
            Some(Token::Minus) => Ok(Expr::Neg(Box::new(self.parse_factor()?))),
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen, "closing parenthesis")?;
                Ok(e)
            }
            found => Err(ParseError::Unexpected {
                expected: "expression".to_string(),
                found,
                offset,
            }),
        }
    }

    fn parse_loop(&mut self) -> Result<LoopAst, ParseError> {
        self.expect_keyword("for")?;
        self.expect(&Token::LParen, "'('")?;
        let var = self.expect_ident("loop iterator")?;
        self.expect(&Token::Assign, "'='")?;
        let lower = self.parse_expr()?;
        self.expect(&Token::Semi, "';'")?;
        let cmp_var = self.expect_ident("loop iterator in condition")?;
        if cmp_var != var {
            return Err(ParseError::InconsistentIterator {
                declared: var,
                found: cmp_var,
            });
        }
        let offset = self.offset();
        let upper_inclusive = match self.bump() {
            Some(Token::Lt) => false,
            Some(Token::Le) => true,
            found => {
                return Err(ParseError::Unexpected {
                    expected: "'<' or '<='".to_string(),
                    found,
                    offset,
                })
            }
        };
        let upper = self.parse_expr()?;
        self.expect(&Token::Semi, "';'")?;
        let inc_var = self.expect_ident("loop iterator in increment")?;
        if inc_var != var {
            return Err(ParseError::InconsistentIterator {
                declared: var,
                found: inc_var,
            });
        }
        self.expect(&Token::PlusPlus, "'++'")?;
        self.expect(&Token::RParen, "')'")?;
        Ok(LoopAst {
            var,
            lower,
            upper,
            upper_inclusive,
        })
    }
}

/// Parses a full program. The body (if present) is captured verbatim
/// from the source between the outermost braces following the loops.
pub fn parse(src: &str) -> Result<ProgramAst, ParseError> {
    // Split off the body first: everything from the first '{' after the
    // last loop header. We find it by scanning the raw text (the lexer
    // would otherwise need to understand arbitrary C).
    let (head, body) = match src.find('{') {
        Some(open) => {
            let mut depth = 0usize;
            let mut close = None;
            for (k, c) in src[open..].char_indices() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(open + k);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let close = close.ok_or(ParseError::UnbalancedBody)?;
            (&src[..open], src[open + 1..close].trim().to_string())
        }
        None => (src, String::new()),
    };

    // Extract an optional OpenMP pragma (the paper's tool input format:
    // loops annotated with `#pragma omp parallel for collapse(c)`).
    let mut collapse: Option<usize> = None;
    let mut schedule: Option<String> = None;
    let mut stripped = String::with_capacity(head.len());
    for line in head.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#pragma") {
            if let Some(pos) = trimmed.find("collapse(") {
                let rest = &trimmed[pos + "collapse(".len()..];
                if let Some(end) = rest.find(')') {
                    collapse = rest[..end].trim().parse().ok();
                }
            }
            if let Some(pos) = trimmed.find("schedule(") {
                let rest = &trimmed[pos + "schedule(".len()..];
                if let Some(end) = rest.find(')') {
                    schedule = Some(rest[..end].trim().to_string());
                }
            }
            continue; // the pragma line itself is not lexed
        }
        stripped.push_str(line);
        stripped.push('\n');
    }

    let tokens = lex(&stripped).map_err(ParseError::Lex)?;
    let mut p = Parser { tokens, pos: 0 };

    let mut params = Vec::new();
    if p.peek() == Some(&Token::Ident("params".into())) {
        p.bump();
        params.push(p.expect_ident("parameter name")?);
        while p.peek() == Some(&Token::Comma) {
            p.bump();
            params.push(p.expect_ident("parameter name")?);
        }
        p.expect(&Token::Semi, "';'")?;
    }

    let mut loops = Vec::new();
    while p.peek().is_some() {
        loops.push(p.parse_loop()?);
    }
    if loops.is_empty() {
        return Err(ParseError::NoLoops);
    }
    if let Some(c) = collapse {
        if c == 0 || c > loops.len() {
            return Err(ParseError::Unexpected {
                expected: format!("collapse depth within 1..={}", loops.len()),
                found: None,
                offset: 0,
            });
        }
    }
    Ok(ProgramAst {
        params,
        loops,
        body,
        collapse,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORRELATION: &str = r#"
        params N;
        for (i = 0; i < N - 1; i++)
          for (j = i + 1; j < N; j++)
          {
            for (k = 0; k < N; k++)
              a[i][j] += b[k][i] * c[k][j];
            a[j][i] = a[i][j];
          }
    "#;

    #[test]
    fn parses_correlation_source() {
        let prog = parse(CORRELATION).unwrap();
        assert_eq!(prog.params, vec!["N"]);
        assert_eq!(prog.loops.len(), 2);
        assert_eq!(prog.loops[0].var, "i");
        assert_eq!(prog.loops[1].var, "j");
        assert!(!prog.loops[0].upper_inclusive);
        assert!(prog.body.contains("a[j][i] = a[i][j];"));
        // End-to-end into a nest:
        let nest = prog.to_nest().unwrap();
        assert_eq!(nest.count_enumerated(&[10]), 45);
    }

    #[test]
    fn parses_figure6_source() {
        let src = "params N;
            for (i = 0; i < N - 1; i++)
              for (j = 0; j < i + 1; j++)
                for (k = j; k < i + 1; k++)
                  { S(i, j, k); }";
        let prog = parse(src).unwrap();
        let nest = prog.to_nest().unwrap();
        assert_eq!(nest.count_enumerated(&[10]), (1000 - 10) / 6);
    }

    #[test]
    fn parses_inclusive_bounds() {
        let prog = parse("for (i = 1; i <= 10; i++)").unwrap();
        assert!(prog.loops[0].upper_inclusive);
        let nest = prog.to_nest().unwrap();
        assert_eq!(nest.count_enumerated(&[]), 10);
    }

    #[test]
    fn rejects_iterator_mismatch() {
        let err = parse("for (i = 0; j < 5; i++)").unwrap_err();
        assert!(matches!(err, ParseError::InconsistentIterator { .. }));
        let err = parse("for (i = 0; i < 5; j++)").unwrap_err();
        assert!(matches!(err, ParseError::InconsistentIterator { .. }));
    }

    #[test]
    fn rejects_empty_program() {
        assert_eq!(parse("params N;").unwrap_err(), ParseError::NoLoops);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("for (i = 0; i < 5; i--)").is_err());
        assert!(matches!(
            parse("for (i = 0; i < @; i++)").unwrap_err(),
            ParseError::Lex(_)
        ));
    }

    #[test]
    fn pragma_collapse_and_schedule_extracted() {
        let src = "params N;
            #pragma omp parallel for collapse(2) schedule(static, 64)
            for (i = 0; i < N - 1; i++)
              for (j = 0; j < i + 1; j++)
                for (k = j; k < i + 1; k++)
                { S(i, j, k); }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.collapse, Some(2));
        assert_eq!(prog.schedule.as_deref(), Some("static, 64"));
        assert_eq!(prog.loops.len(), 3);
    }

    #[test]
    fn pragma_collapse_out_of_range_rejected() {
        let src = "#pragma omp parallel for collapse(5)
            for (i = 0; i < 9; i++) { b; }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn no_pragma_means_collapse_everything() {
        let prog = parse("for (i = 0; i < 9; i++) { b; }").unwrap();
        assert_eq!(prog.collapse, None);
        assert_eq!(prog.schedule, None);
    }

    #[test]
    fn nested_braces_in_body() {
        let prog = parse("for (i = 0; i < 5; i++) { if (x) { y(); } }").unwrap();
        assert_eq!(prog.body, "if (x) { y(); }");
    }

    #[test]
    fn unbalanced_body_rejected() {
        assert_eq!(
            parse("for (i = 0; i < 5; i++) { oops(").unwrap_err(),
            ParseError::UnbalancedBody
        );
    }
}
