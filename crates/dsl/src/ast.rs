//! AST for the loop-nest mini-language and affine lowering.

use nrl_polyhedra::{Affine, NestError, NestSpec, Space};
use std::collections::BTreeMap;
use std::fmt;

/// An arithmetic expression as parsed (not yet checked for affinity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(String),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

/// Errors lowering an [`Expr`] to an affine form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffineError {
    /// A product of two non-constant sub-expressions.
    NonAffine,
    /// A variable not declared as a parameter or surrounding iterator.
    UnknownVar(String),
    /// Coefficient arithmetic overflowed.
    Overflow,
}

impl fmt::Display for AffineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineError::NonAffine => write!(f, "expression is not affine (product of variables)"),
            AffineError::UnknownVar(v) => write!(f, "unknown variable {v:?}"),
            AffineError::Overflow => write!(f, "coefficient overflow"),
        }
    }
}

impl std::error::Error for AffineError {}

/// Linear form accumulated during lowering: variable name → coefficient,
/// plus a constant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Linear {
    coeffs: BTreeMap<String, i64>,
    constant: i64,
}

impl Linear {
    fn constant(c: i64) -> Self {
        Linear {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    fn var(name: &str) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_string(), 1);
        Linear {
            coeffs,
            constant: 0,
        }
    }

    fn checked_add(mut self, rhs: &Linear, sign: i64) -> Result<Self, AffineError> {
        for (v, c) in &rhs.coeffs {
            let entry = self.coeffs.entry(v.clone()).or_insert(0);
            *entry = entry
                .checked_add(c.checked_mul(sign).ok_or(AffineError::Overflow)?)
                .ok_or(AffineError::Overflow)?;
        }
        self.constant = self
            .constant
            .checked_add(
                rhs.constant
                    .checked_mul(sign)
                    .ok_or(AffineError::Overflow)?,
            )
            .ok_or(AffineError::Overflow)?;
        Ok(self)
    }

    fn checked_scale(mut self, k: i64) -> Result<Self, AffineError> {
        for c in self.coeffs.values_mut() {
            *c = c.checked_mul(k).ok_or(AffineError::Overflow)?;
        }
        self.constant = self.constant.checked_mul(k).ok_or(AffineError::Overflow)?;
        Ok(self)
    }

    fn is_constant(&self) -> bool {
        self.coeffs.values().all(|&c| c == 0)
    }
}

impl Expr {
    fn linearize(&self) -> Result<Linear, AffineError> {
        match self {
            Expr::Int(n) => Ok(Linear::constant(*n)),
            Expr::Var(v) => Ok(Linear::var(v)),
            Expr::Add(a, b) => a.linearize()?.checked_add(&b.linearize()?, 1),
            Expr::Sub(a, b) => a.linearize()?.checked_add(&b.linearize()?, -1),
            Expr::Neg(a) => a.linearize()?.checked_scale(-1),
            Expr::Mul(a, b) => {
                let la = a.linearize()?;
                let lb = b.linearize()?;
                if la.is_constant() {
                    lb.checked_scale(la.constant)
                } else if lb.is_constant() {
                    la.checked_scale(lb.constant)
                } else {
                    Err(AffineError::NonAffine)
                }
            }
        }
    }

    /// Lowers the expression to an [`Affine`] over `space`.
    pub fn to_affine(&self, space: &Space) -> Result<Affine, AffineError> {
        let linear = self.linearize()?;
        let mut coeffs = vec![0i64; space.len()];
        for (name, c) in &linear.coeffs {
            if *c == 0 {
                continue;
            }
            let v = space
                .index_of(name)
                .ok_or_else(|| AffineError::UnknownVar(name.clone()))?;
            coeffs[v] = *c;
        }
        Ok(Affine::from_parts(space.clone(), coeffs, linear.constant))
    }
}

/// One parsed `for` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopAst {
    /// Iterator name.
    pub var: String,
    /// Lower bound (inclusive, from `var = expr`).
    pub lower: Expr,
    /// Upper bound expression.
    pub upper: Expr,
    /// Whether the comparison was `<=` (inclusive) rather than `<`.
    pub upper_inclusive: bool,
}

/// A parsed program: parameters, the loop nest, and the raw body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramAst {
    /// Declared size parameters.
    pub params: Vec<String>,
    /// The perfectly nested loops, outermost first.
    pub loops: Vec<LoopAst>,
    /// Verbatim body source (inside the innermost braces), untouched by
    /// the collapser and re-emitted by codegen.
    pub body: String,
    /// Number of loops a `#pragma omp … collapse(c)` requested (`None`
    /// means collapse everything — the tool's default).
    pub collapse: Option<usize>,
    /// `schedule(...)` clause text from the pragma, if any.
    pub schedule: Option<String>,
}

impl Expr {
    /// Renders as C source (used to re-emit non-collapsed inner loop
    /// headers verbatim-equivalent).
    pub fn render(&self) -> String {
        match self {
            Expr::Int(n) => n.to_string(),
            Expr::Var(v) => v.clone(),
            Expr::Add(a, b) => format!("{} + {}", a.render(), b.render_factor()),
            Expr::Sub(a, b) => format!("{} - {}", a.render(), b.render_factor()),
            Expr::Mul(a, b) => format!("{}*{}", a.render_factor(), b.render_factor()),
            Expr::Neg(a) => format!("-{}", a.render_factor()),
        }
    }

    /// Renders with parentheses when the node is an additive compound.
    fn render_factor(&self) -> String {
        match self {
            Expr::Add(..) | Expr::Sub(..) | Expr::Neg(..) => format!("({})", self.render()),
            _ => self.render(),
        }
    }
}

/// Errors lowering a program to a [`NestSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A bound expression was not affine or used an unknown variable.
    Bound {
        /// Loop level of the bad bound.
        level: usize,
        /// Underlying reason.
        cause: AffineError,
    },
    /// Structural nest error (forward references etc.).
    Nest(NestError),
    /// The same name is used twice (iterator/parameter collision).
    DuplicateName(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Bound { level, cause } => {
                write!(f, "bad bound at loop level {level}: {cause}")
            }
            LowerError::Nest(e) => write!(f, "{e}"),
            LowerError::DuplicateName(n) => write!(f, "duplicate variable name {n:?}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl ProgramAst {
    /// Lowers the parsed program to a validated [`NestSpec`].
    pub fn to_nest(&self) -> Result<NestSpec, LowerError> {
        let iters: Vec<&str> = self.loops.iter().map(|l| l.var.as_str()).collect();
        let params: Vec<&str> = self.params.iter().map(String::as_str).collect();
        for name in &iters {
            if params.contains(name) || iters.iter().filter(|n| *n == name).count() > 1 {
                return Err(LowerError::DuplicateName(name.to_string()));
            }
        }
        let space = Space::new(&iters, &params);
        let mut bounds = Vec::with_capacity(self.loops.len());
        for (level, l) in self.loops.iter().enumerate() {
            let lo = l
                .lower
                .to_affine(&space)
                .map_err(|cause| LowerError::Bound { level, cause })?;
            let hi = l
                .upper
                .to_affine(&space)
                .map_err(|cause| LowerError::Bound { level, cause })?;
            let hi = if l.upper_inclusive { hi } else { hi - 1 };
            bounds.push((lo, hi));
        }
        NestSpec::new(space, bounds).map_err(LowerError::Nest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Space {
        Space::new(&["i", "j"], &["N"])
    }

    #[test]
    fn linearizes_affine_expressions() {
        // 2*(N − i) + 3 → −2i + 2N + 3
        let e = Expr::Add(
            Box::new(Expr::Mul(
                Box::new(Expr::Int(2)),
                Box::new(Expr::Sub(
                    Box::new(Expr::Var("N".into())),
                    Box::new(Expr::Var("i".into())),
                )),
            )),
            Box::new(Expr::Int(3)),
        );
        let a = e.to_affine(&space()).unwrap();
        assert_eq!(a.coeff(0), -2);
        assert_eq!(a.coeff(2), 2);
        assert_eq!(a.constant_term(), 3);
    }

    #[test]
    fn rejects_products_of_variables() {
        let e = Expr::Mul(
            Box::new(Expr::Var("i".into())),
            Box::new(Expr::Var("N".into())),
        );
        assert_eq!(e.to_affine(&space()).unwrap_err(), AffineError::NonAffine);
    }

    #[test]
    fn rejects_unknown_variables() {
        let e = Expr::Var("zz".into());
        assert_eq!(
            e.to_affine(&space()).unwrap_err(),
            AffineError::UnknownVar("zz".into())
        );
    }

    #[test]
    fn negation_distributes() {
        let e = Expr::Neg(Box::new(Expr::Sub(
            Box::new(Expr::Var("i".into())),
            Box::new(Expr::Int(4)),
        )));
        let a = e.to_affine(&space()).unwrap();
        assert_eq!(a.coeff(0), -1);
        assert_eq!(a.constant_term(), 4);
    }

    #[test]
    fn lowering_builds_correlation_nest() {
        let prog = ProgramAst {
            params: vec!["N".into()],
            loops: vec![
                LoopAst {
                    var: "i".into(),
                    lower: Expr::Int(0),
                    upper: Expr::Sub(Box::new(Expr::Var("N".into())), Box::new(Expr::Int(1))),
                    upper_inclusive: false,
                },
                LoopAst {
                    var: "j".into(),
                    lower: Expr::Add(Box::new(Expr::Var("i".into())), Box::new(Expr::Int(1))),
                    upper: Expr::Var("N".into()),
                    upper_inclusive: false,
                },
            ],
            body: String::new(),
            collapse: None,
            schedule: None,
        };
        let nest = prog.to_nest().unwrap();
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.count_enumerated(&[10]), 45);
    }

    #[test]
    fn duplicate_names_rejected() {
        let prog = ProgramAst {
            params: vec!["i".into()],
            loops: vec![LoopAst {
                var: "i".into(),
                lower: Expr::Int(0),
                upper: Expr::Int(5),
                upper_inclusive: true,
            }],
            body: String::new(),
            collapse: None,
            schedule: None,
        };
        assert!(matches!(
            prog.to_nest().unwrap_err(),
            LowerError::DuplicateName(_)
        ));
    }
}
