//! Lexer for the loop-nest mini-language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `++`
    PlusPlus,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Assign => write!(f, "="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::PlusPlus => write!(f, "++"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
        }
    }
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Offending byte offset.
    pub offset: usize,
    /// The unexpected character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character {:?} at offset {}",
            self.ch, self.offset
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src` up to (but not including) the loop body: the caller
/// stops consuming at the brace depth it cares about. Comments (`//` to
/// end of line) and whitespace are skipped.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    offset: i,
                });
                i += 1;
            }
            ';' => {
                out.push(Spanned {
                    token: Token::Semi,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    token: Token::Assign,
                    offset: i,
                });
                i += 1;
            }
            '{' => {
                out.push(Spanned {
                    token: Token::LBrace,
                    offset: i,
                });
                i += 1;
            }
            '}' => {
                out.push(Spanned {
                    token: Token::RBrace,
                    offset: i,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Le,
                        offset: i,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '+' => {
                if bytes.get(i + 1) == Some(&b'+') {
                    out.push(Spanned {
                        token: Token::PlusPlus,
                        offset: i,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Plus,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '-' => {
                out.push(Spanned {
                    token: Token::Minus,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    token: Token::Star,
                    offset: i,
                });
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = src[start..i].parse().expect("digits parse");
                out.push(Spanned {
                    token: Token::Int(n),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(src[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(LexError {
                    offset: i,
                    ch: other,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_for_header() {
        assert_eq!(
            tokens("for (i = 0; i < N - 1; i++)"),
            vec![
                Token::Ident("for".into()),
                Token::LParen,
                Token::Ident("i".into()),
                Token::Assign,
                Token::Int(0),
                Token::Semi,
                Token::Ident("i".into()),
                Token::Lt,
                Token::Ident("N".into()),
                Token::Minus,
                Token::Int(1),
                Token::Semi,
                Token::Ident("i".into()),
                Token::PlusPlus,
                Token::RParen,
            ]
        );
    }

    #[test]
    fn distinguishes_lt_le() {
        assert_eq!(tokens("< <="), vec![Token::Lt, Token::Le]);
    }

    #[test]
    fn skips_comments_and_whitespace() {
        assert_eq!(
            tokens("a // comment\n b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("i @ j").unwrap_err();
        assert_eq!(err.ch, '@');
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn multi_digit_and_underscored_idents() {
        assert_eq!(
            tokens("x_1 12345"),
            vec![Token::Ident("x_1".into()), Token::Int(12345)]
        );
    }
}
