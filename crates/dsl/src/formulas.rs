//! Closed-form recovery formulas as symbolic expressions (§IV).
//!
//! For each collapsed level this module constructs the explicit root
//! expression the generated code will evaluate — the quadratic formula
//! or Cardano's cubic formula over complex intermediates — and selects
//! the *convenient branch* the same way the paper does with Maxima: the
//! branch whose floored evaluation reproduces the first iteration
//! (§IV-A), validated here against the exact unranker on a sample of
//! ranks (§IV-D guarantees the branch choice is stable across `pc`).

use crate::sym::SymExpr;
use nrl_core::CollapseSpec;
use nrl_poly::Poly;
use std::collections::HashMap;
use std::fmt;

/// Why symbolic formula construction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormulaError {
    /// The level equation has degree 4+: Ferrari's symbolic form is too
    /// large to print usefully (the paper's examples stop at cubic);
    /// generated code must call the runtime solver instead.
    DegreeTooHigh {
        /// Offending level.
        level: usize,
        /// Univariate degree at that level.
        degree: usize,
    },
    /// No root branch reproduced the exact indices on the validation
    /// sample (indicates an invalid domain for the sample parameters).
    NoValidBranch {
        /// Offending level.
        level: usize,
    },
    /// The nest has no iterations at the sample parameters, so branch
    /// selection has nothing to validate against.
    EmptySample,
}

impl fmt::Display for FormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormulaError::DegreeTooHigh { level, degree } => write!(
                f,
                "level {level} equation has degree {degree}: symbolic closed forms are emitted up to degree 3 (use the runtime solver for quartics)"
            ),
            FormulaError::NoValidBranch { level } => {
                write!(f, "no symbolic root branch validated at level {level}")
            }
            FormulaError::EmptySample => {
                write!(f, "sample parameters give an empty domain; cannot select root branches")
            }
        }
    }
}

impl std::error::Error for FormulaError {}

/// The recovery formula of one level.
#[derive(Debug, Clone)]
pub struct LevelFormula {
    /// Iterator name.
    pub var: String,
    /// The full expression (already wrapped in `floor(creal(…))` for
    /// root-based levels; a plain integer expression for the exact
    /// innermost level).
    pub expr: SymExpr,
    /// True when the expression requires complex arithmetic (§IV-C).
    pub needs_complex: bool,
    /// True for the exact (no-floor-needed) innermost formula.
    pub exact: bool,
}

fn neg(e: SymExpr) -> SymExpr {
    SymExpr::Neg(Box::new(e))
}

fn add(ts: Vec<SymExpr>) -> SymExpr {
    SymExpr::Add(ts)
}

fn mul(ts: Vec<SymExpr>) -> SymExpr {
    SymExpr::Mul(ts)
}

fn div(a: SymExpr, b: SymExpr) -> SymExpr {
    SymExpr::Div(Box::new(a), Box::new(b))
}

fn sqrt(e: SymExpr) -> SymExpr {
    SymExpr::Sqrt(Box::new(e))
}

fn cbrt(e: SymExpr) -> SymExpr {
    SymExpr::Cbrt(Box::new(e))
}

fn pow(e: SymExpr, k: u32) -> SymExpr {
    SymExpr::Pow(Box::new(e), k)
}

fn rat(n: i128, d: i128) -> SymExpr {
    SymExpr::Rat(nrl_rational::Rational::new(n, d))
}

/// Recursively checks whether an expression contains a cube root.
fn contains_cbrt(e: &SymExpr) -> bool {
    match e {
        SymExpr::Cbrt(_) => true,
        SymExpr::Rat(_) | SymExpr::Var(_) => false,
        SymExpr::Add(ts) | SymExpr::Mul(ts) => ts.iter().any(contains_cbrt),
        SymExpr::Neg(t) | SymExpr::Pow(t, _) | SymExpr::Re(t) | SymExpr::Floor(t) => {
            contains_cbrt(t)
        }
        SymExpr::Sqrt(t) => contains_cbrt(t),
        SymExpr::Div(a, b) => contains_cbrt(a) || contains_cbrt(b),
    }
}

/// All symbolic roots of `Σ coeffs[j]·x^j = 0` for degrees 1–3, in a
/// deterministic branch order. Coefficients are arbitrary [`SymExpr`]s.
pub fn symbolic_roots(coeffs: &[SymExpr]) -> Result<Vec<SymExpr>, usize> {
    match coeffs.len() - 1 {
        1 => Ok(vec![div(neg(coeffs[0].clone()), coeffs[1].clone())]),
        2 => {
            let (c0, c1, c2) = (coeffs[0].clone(), coeffs[1].clone(), coeffs[2].clone());
            let disc = add(vec![
                pow(c1.clone(), 2),
                mul(vec![rat(-4, 1), c2.clone(), c0]),
            ]);
            let two_a = mul(vec![rat(2, 1), c2]);
            Ok(vec![
                div(
                    add(vec![neg(c1.clone()), sqrt(disc.clone())]),
                    two_a.clone(),
                ),
                div(add(vec![neg(c1), neg(sqrt(disc))]), two_a),
            ])
        }
        3 => {
            let (c0, c1, c2, c3) = (
                coeffs[0].clone(),
                coeffs[1].clone(),
                coeffs[2].clone(),
                coeffs[3].clone(),
            );
            // Normalize: x³ + a x² + b x + c.
            let a = div(c2, c3.clone());
            let b = div(c1, c3.clone());
            let c = div(c0, c3);
            // Depressed: t³ + p t + q, x = t − a/3.
            let p = add(vec![b.clone(), neg(div(pow(a.clone(), 2), rat(3, 1)))]);
            let q = add(vec![
                div(mul(vec![rat(2, 1), pow(a.clone(), 3)]), rat(27, 1)),
                neg(div(mul(vec![a.clone(), b]), rat(3, 1))),
                c,
            ]);
            // u = cbrt(−q/2 + sqrt(q²/4 + p³/27)).
            let inner = add(vec![
                div(pow(q.clone(), 2), rat(4, 1)),
                div(pow(p.clone(), 3), rat(27, 1)),
            ]);
            let u = cbrt(add(vec![neg(div(q, rat(2, 1))), sqrt(inner)]));
            // ω = (−1 + √−3)/2 as a symbolic complex constant.
            let omega = div(add(vec![rat(-1, 1), sqrt(rat(-3, 1))]), rat(2, 1));
            let shift = neg(div(a, rat(3, 1)));
            let mut roots = Vec::with_capacity(3);
            for m in 0..3u32 {
                let uk = if m == 0 {
                    u.clone()
                } else {
                    mul(vec![pow(omega.clone(), m), u.clone()])
                };
                let t = add(vec![
                    uk.clone(),
                    neg(div(p.clone(), mul(vec![rat(3, 1), uk]))),
                ]);
                roots.push(add(vec![t, shift.clone()]));
            }
            Ok(roots)
        }
        d => Err(d),
    }
}

/// Builds the per-level recovery formulas for `spec`, selecting root
/// branches by validation at `sample_params` (which must give a
/// non-empty valid domain).
pub fn build_formulas(
    spec: &CollapseSpec,
    sample_params: &[i64],
) -> Result<Vec<LevelFormula>, FormulaError> {
    let nest = spec.nest();
    let d = nest.depth();
    let names: Vec<&str> = nest.space().names().iter().map(String::as_str).collect();
    let collapsed = spec
        .bind(sample_params)
        .map_err(|_| FormulaError::EmptySample)?;
    let total = collapsed.total();
    if total <= 0 {
        return Err(FormulaError::EmptySample);
    }
    // Validation sample: first, last, and a spread of ranks.
    let mut sample_pcs: Vec<i128> = vec![1, total];
    for f in 1..20 {
        sample_pcs.push(1 + (total - 1) * f / 20);
    }
    sample_pcs.sort_unstable();
    sample_pcs.dedup();
    let sample_points: Vec<(i128, Vec<i64>)> = sample_pcs
        .iter()
        .map(|&pc| (pc, collapsed.unrank(pc)))
        .collect();

    let mut out = Vec::with_capacity(d);
    for k in 0..d {
        if k == d - 1 {
            // Exact innermost formula: x = lb + pc − R(prefix, lb).
            let lb = nest.lower(k).to_poly();
            let r_at_lb = spec.level_poly(k).substitute(k, &lb);
            let expr = add(vec![
                SymExpr::from_poly(&lb, &names),
                SymExpr::var("pc"),
                neg(SymExpr::from_poly(&r_at_lb, &names)),
            ]);
            out.push(LevelFormula {
                var: names[k].to_string(),
                expr,
                needs_complex: false,
                exact: true,
            });
            continue;
        }
        let coeff_polys: Vec<Poly> = spec.level_poly(k).univariate_coeffs(k);
        let degree = coeff_polys.len() - 1;
        let mut coeffs: Vec<SymExpr> = coeff_polys
            .iter()
            .map(|p| SymExpr::from_poly(p, &names))
            .collect();
        // The equation is R_k(x) − pc = 0.
        coeffs[0] = add(vec![coeffs[0].clone(), neg(SymExpr::var("pc"))]);
        let branches = symbolic_roots(&coeffs).map_err(|deg| FormulaError::DegreeTooHigh {
            level: k,
            degree: deg,
        })?;
        let _ = degree;
        // Select the branch whose floor matches the exact indices on
        // every validation sample, tracking whether any intermediate
        // value was genuinely complex along the way.
        let mut chosen = None;
        let mut observed_complex = false;
        'branches: for branch in &branches {
            let mut branch_complex = false;
            for (pc, point) in &sample_points {
                let mut bindings: HashMap<String, f64> = HashMap::new();
                bindings.insert("pc".to_string(), *pc as f64);
                for (v, name) in names.iter().enumerate().take(d) {
                    bindings.insert(
                        (*name).to_string(),
                        point.get(v).copied().unwrap_or(0) as f64,
                    );
                }
                for (pi, name) in names.iter().enumerate().skip(d) {
                    bindings.insert((*name).to_string(), sample_params[pi - d] as f64);
                }
                let v = branch.eval(&bindings);
                branch_complex |= v.im.abs() > 1e-9;
                // Floor with a tiny forgiveness for rounding just below
                // the integer (the exact verification in nrl-core is the
                // real safety net; this is only branch selection).
                let floored = (v.re + 1e-9).floor() as i64;
                if floored != point[k] {
                    continue 'branches;
                }
            }
            chosen = Some(branch.clone());
            observed_complex = branch_complex;
            break;
        }
        let branch = chosen.ok_or(FormulaError::NoValidBranch { level: k })?;
        // Complex arithmetic is required when a cube root occurs (its
        // principal branch is complex for negative radicands, §IV-C), or
        // when a sampled evaluation was complex. For pure square-root
        // (quadratic) formulas the discriminant is *linear* in pc, so
        // real values at the sampled endpoints (pc = 1 and pc = total)
        // prove realness across the whole range — matching the paper's
        // Fig. 3, which emits plain sqrt for the quadratic case.
        let has_cbrt = contains_cbrt(&branch);
        let needs_complex = branch.needs_complex() && (has_cbrt || observed_complex);
        let expr = SymExpr::Floor(Box::new(if needs_complex {
            SymExpr::Re(Box::new(branch))
        } else {
            branch
        }));
        out.push(LevelFormula {
            var: names[k].to_string(),
            expr,
            needs_complex,
            exact: false,
        });
    }
    Ok(out)
}

/// The total-iteration-count expression (the collapsed loop's upper
/// bound), in terms of the parameters.
pub fn total_expr(spec: &CollapseSpec) -> SymExpr {
    let names: Vec<&str> = spec
        .nest()
        .space()
        .names()
        .iter()
        .map(String::as_str)
        .collect();
    SymExpr::from_poly(spec.ranking().total_poly(), &names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrl_polyhedra::NestSpec;

    fn bindings(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn correlation_formula_matches_paper() {
        // Paper Fig. 3:
        //   i = floor(−(sqrt(4N² − 4N − 8pc + 9) − 2N + 1)/2)
        //   j = floor(−(2iN − 2pc − i² − 3i)/2)
        let spec = CollapseSpec::new(&NestSpec::correlation()).unwrap();
        let formulas = build_formulas(&spec, &[50]).unwrap();
        assert_eq!(formulas.len(), 2);
        assert!(!formulas[0].exact);
        assert!(formulas[1].exact);
        let n = 50f64;
        let collapsed = spec.bind(&[50]).unwrap();
        for pc in 1..=collapsed.total() {
            let point = collapsed.unrank(pc);
            // Our symbolic i-formula:
            let ours = formulas[0]
                .expr
                .eval(&bindings(&[("pc", pc as f64), ("N", n)]));
            // The paper's printed formula:
            let paper = (-((4.0 * n * n - 4.0 * n - 8.0 * pc as f64 + 9.0).sqrt() - 2.0 * n + 1.0)
                / 2.0)
                .floor();
            assert_eq!(ours.re as i64, point[0], "pc={pc} (ours)");
            assert_eq!(paper as i64, point[0], "pc={pc} (paper)");
            // And the j-formula given i:
            let j = formulas[1].expr.eval(&bindings(&[
                ("pc", pc as f64),
                ("N", n),
                ("i", point[0] as f64),
            ]));
            let paper_j = -(2.0 * point[0] as f64 * n
                - 2.0 * pc as f64
                - (point[0] * point[0]) as f64
                - 3.0 * point[0] as f64)
                / 2.0;
            assert_eq!(j.re.round() as i64, point[1], "pc={pc} j (ours)");
            assert_eq!(paper_j.floor() as i64, point[1], "pc={pc} j (paper)");
        }
    }

    #[test]
    fn figure6_cubic_formula_recovers_indices() {
        // The §IV-C cubic with complex intermediates.
        let spec = CollapseSpec::new(&NestSpec::figure6()).unwrap();
        let formulas = build_formulas(&spec, &[20]).unwrap();
        assert_eq!(formulas.len(), 3);
        assert!(
            formulas[0].needs_complex,
            "cubic root needs complex arithmetic"
        );
        let collapsed = spec.bind(&[20]).unwrap();
        for pc in 1..=collapsed.total() {
            let point = collapsed.unrank(pc);
            let i = formulas[0]
                .expr
                .eval(&bindings(&[("pc", pc as f64), ("N", 20.0)]));
            assert_eq!(i.re as i64, point[0], "pc={pc} i");
            let j = formulas[1].expr.eval(&bindings(&[
                ("pc", pc as f64),
                ("N", 20.0),
                ("i", point[0] as f64),
            ]));
            assert_eq!(j.re as i64, point[1], "pc={pc} j (i={})", point[0]);
            let k = formulas[2].expr.eval(&bindings(&[
                ("pc", pc as f64),
                ("N", 20.0),
                ("i", point[0] as f64),
                ("j", point[1] as f64),
            ]));
            assert_eq!(k.re.round() as i64, point[2], "pc={pc} k");
        }
    }

    #[test]
    fn figure6_formula_at_pc1_passes_through_complex_zero() {
        // §IV-C: at pc = 1 the discriminant is negative (√−1) yet the
        // root evaluates to 0 + 0i.
        let spec = CollapseSpec::new(&NestSpec::figure6()).unwrap();
        let formulas = build_formulas(&spec, &[10]).unwrap();
        let v = formulas[0]
            .expr
            .eval(&bindings(&[("pc", 1.0), ("N", 10.0)]));
        assert_eq!(v.re as i64, 0);
    }

    #[test]
    fn total_expr_matches_total_poly() {
        let spec = CollapseSpec::new(&NestSpec::correlation()).unwrap();
        let e = total_expr(&spec);
        let v = e.eval(&bindings(&[("N", 100.0)]));
        assert_eq!(v.re as i64, 99 * 100 / 2);
    }

    #[test]
    fn quartic_reports_degree_error() {
        use nrl_polyhedra::Space;
        let s = Space::new(&["i", "j", "k", "l"], &["N"]);
        let nest = NestSpec::new(
            s.clone(),
            vec![
                (s.cst(0), s.var("N") - 1),
                (s.cst(0), s.var("i")),
                (s.cst(0), s.var("i")),
                (s.cst(0), s.var("i")),
            ],
        )
        .unwrap();
        let spec = CollapseSpec::new(&nest).unwrap();
        let err = build_formulas(&spec, &[6]).unwrap_err();
        assert!(matches!(
            err,
            FormulaError::DegreeTooHigh {
                level: 0,
                degree: 4
            }
        ));
    }

    #[test]
    fn empty_sample_rejected() {
        let spec = CollapseSpec::new(&NestSpec::correlation()).unwrap();
        assert_eq!(
            build_formulas(&spec, &[1]).unwrap_err(),
            FormulaError::EmptySample
        );
    }
}
