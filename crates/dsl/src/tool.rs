//! The end-to-end tool: C-like source in, collapsed C out — the exact
//! workflow of the paper's §VII software tool ("taking as input C source
//! codes where non-rectangular loop nests are parallelized using the
//! OpenMP collapse clause").

use crate::ast::LowerError;
use crate::codegen::{generate_c, CodegenOptions};
use crate::formulas::FormulaError;
use crate::parser::{parse, ParseError};
use nrl_core::CollapseError;
use std::fmt;

/// Any failure along the source-to-source pipeline.
#[derive(Debug)]
pub enum ToolError {
    /// Syntax error.
    Parse(ParseError),
    /// The nest is structurally invalid or non-affine.
    Lower(LowerError),
    /// Symbolic collapse failed (nest too deep).
    Collapse(CollapseError),
    /// Formula emission failed (degree, branch selection, sample).
    Formula(FormulaError),
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::Parse(e) => write!(f, "parse error: {e}"),
            ToolError::Lower(e) => write!(f, "lowering error: {e}"),
            ToolError::Collapse(e) => write!(f, "collapse error: {e}"),
            ToolError::Formula(e) => write!(f, "formula error: {e}"),
        }
    }
}

impl std::error::Error for ToolError {}

impl From<ParseError> for ToolError {
    fn from(e: ParseError) -> Self {
        ToolError::Parse(e)
    }
}

impl From<LowerError> for ToolError {
    fn from(e: LowerError) -> Self {
        ToolError::Lower(e)
    }
}

impl From<CollapseError> for ToolError {
    fn from(e: CollapseError) -> Self {
        ToolError::Collapse(e)
    }
}

impl From<FormulaError> for ToolError {
    fn from(e: FormulaError) -> Self {
        ToolError::Formula(e)
    }
}

/// Runs the whole pipeline: parse `src`, honour its `collapse(c)` pragma
/// (default: collapse every loop), resolve the ranking machinery for
/// the collapsed prefix through the global
/// [`PlanCache`](nrl_plan::PlanCache) — repeated tool invocations over
/// the same nest shape (batch compilation, the `nrlc` binary in watch
/// loops) reuse the analyzed plan — and emit the transformed C.
pub fn collapse_source(src: &str, opts: &CodegenOptions) -> Result<String, ToolError> {
    let prog = parse(src)?;
    let nest = prog.to_nest()?;
    let c = prog.collapse.unwrap_or(nest.depth());
    let prefix = nest.prefix(c);
    let plan =
        nrl_plan::PlanCache::global().get_or_analyze(&prefix, nrl_plan::PlanContext::default())?;
    Ok(generate_c(&prog, plan.spec(), opts)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_collapse_by_default() {
        let src = "params N;
            for (i = 0; i < N - 1; i++)
              for (j = i + 1; j < N; j++)
              { work(i, j); }";
        let code = collapse_source(src, &CodegenOptions::default()).unwrap();
        assert!(code.contains("for (pc = 1; pc <="));
        assert!(code.contains("work(i, j);"));
        // No residual inner `for` around the body.
        assert!(!code.contains("for (j ="), "{code}");
    }

    #[test]
    fn partial_collapse_keeps_inner_loop() {
        // The paper's ltmp shape: collapse only the two outer loops; the
        // k loop (with non-constant bounds) survives inside.
        let src = "params N;
            #pragma omp parallel for collapse(2) schedule(static)
            for (i = 0; i < N; i++)
              for (j = 0; j < i + 1; j++)
                for (k = j; k < i + 1; k++)
                { c[i][j] += a[i][k] * b[k][j]; }";
        let code = collapse_source(src, &CodegenOptions::default()).unwrap();
        // pc bound counts (i, j) pairs: N(N+1)/2 — quadratic, not cubic.
        assert!(code.contains("for (pc = 1; pc <="));
        // The k loop is re-emitted verbatim-equivalent.
        assert!(code.contains("for (k = j; k < i + 1; k++)"), "{code}");
        // Recovery only assigns i and j.
        assert!(code.contains("i = "));
        assert!(code.contains("j = "));
        assert!(!code.contains("\n      k = "), "{code}");
    }

    #[test]
    fn pragma_schedule_is_honoured() {
        let src = "params N;
            #pragma omp parallel for collapse(2) schedule(dynamic, 8)
            for (i = 0; i < N - 1; i++)
              for (j = i + 1; j < N; j++)
              { w(); }";
        let code = collapse_source(src, &CodegenOptions::default()).unwrap();
        assert!(code.contains("schedule(dynamic, 8)"), "{code}");
    }

    #[test]
    fn errors_propagate_with_context() {
        let err = collapse_source(
            "for (i = 0; i < j * j; i++) { b; }",
            &CodegenOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ToolError::Lower(_)), "{err}");
        let err = collapse_source("not a loop", &CodegenOptions::default()).unwrap_err();
        assert!(matches!(err, ToolError::Parse(_)));
    }
}
