#![warn(missing_docs)]
//! Source-to-source collapsing: the paper's "software tool".
//!
//! The authors' tool takes C sources whose non-rectangular nests carry
//! an OpenMP `collapse` clause and rewrites them into collapsed loops
//! with index-recovery code (their Figs. 3, 4 and 7). This crate
//! reproduces that pipeline for a C-like loop-nest language:
//!
//! 1. [`parse`] — lexer + recursive-descent parser for
//!    `params N; for (i = 0; i < N − 1; i++) … { body }` sources,
//!    producing a validated [`NestSpec`](nrl_polyhedra::NestSpec) and
//!    the body text;
//! 2. [`sym`] — a symbolic expression tree ([`SymExpr`]) with complex
//!    evaluation and C/Rust printers (`csqrt`/`cpow`/`creal` in C, our
//!    `Complex64` in Rust);
//! 3. [`formulas`] — closed-form root expressions per level (degrees
//!    1–3 symbolic, mirroring the quadratic/Cardano forms the paper
//!    prints; degree-4 nests fall back to emitting a runtime solver
//!    call), with the convenient branch selected numerically the same
//!    way the paper selects it with Maxima (`⌊x(1)⌋` = first index);
//! 4. [`codegen`] — emission of the collapsed C (Fig. 3 naive / Fig. 4
//!    chunked style, with OpenMP pragmas) and Rust sources.

pub mod ast;
pub mod codegen;
pub mod formulas;
pub mod parser;
pub mod sym;
pub mod token;
pub mod tool;

pub use ast::{LoopAst, ProgramAst};
pub use codegen::{generate_c, generate_rust, CodegenOptions, CodegenStyle};
pub use formulas::{build_formulas, FormulaError, LevelFormula};
pub use parser::{parse, ParseError};
pub use sym::SymExpr;
pub use tool::{collapse_source, ToolError};
