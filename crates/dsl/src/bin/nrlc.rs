//! `nrlc` — the command-line collapser: C-like loop-nest source in,
//! collapsed OpenMP C out (the paper's tool as a binary).
//!
//! ```text
//! nrlc input.loop                 # chunked (Fig. 4) style to stdout
//! nrlc --naive input.loop        # per-iteration recovery (Fig. 3)
//! nrlc --chunk 256 input.loop    # §V schedule(static,256) scheme
//! nrlc --simd 8 input.loop       # §VI.A simd-buffered scheme
//! nrlc --warp 32 input.loop      # §VI.B GPU-warp scheme
//! nrlc --rust input.loop         # emit Rust instead of C
//! nrlc --sample 64 input.loop    # branch-selection parameter value
//! echo '...' | nrlc -             # read from stdin
//! ```

use nrl_dsl::{collapse_source, generate_rust, parse, CodegenOptions, CodegenStyle};
use nrl_plan::{PlanCache, PlanContext};
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nrlc [--naive | --chunk C | --simd V | --warp W] [--rust] \
         [--schedule S] [--sample N] <file|->"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut style = CodegenStyle::Chunked;
    let mut emit_rust = false;
    let mut schedule = "static".to_string();
    let mut sample: i64 = 100;
    let mut input: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--naive" => style = CodegenStyle::Naive,
            "--chunk" => match it.next().and_then(|s| s.parse().ok()) {
                Some(c) => style = CodegenStyle::ChunkedBy(c),
                None => return usage(),
            },
            "--simd" => match it.next().and_then(|s| s.parse().ok()) {
                Some(v) => style = CodegenStyle::Simd(v),
                None => return usage(),
            },
            "--warp" => match it.next().and_then(|s| s.parse().ok()) {
                Some(w) => style = CodegenStyle::GpuWarp(w),
                None => return usage(),
            },
            "--rust" => emit_rust = true,
            "--schedule" => match it.next() {
                Some(s) => schedule = s.clone(),
                None => return usage(),
            },
            "--sample" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => sample = n,
                None => return usage(),
            },
            "--help" | "-h" => {
                return usage();
            }
            other => {
                if input.is_some() {
                    return usage();
                }
                input = Some(other.to_string());
            }
        }
    }
    let Some(path) = input else {
        return usage();
    };
    let src = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("nrlc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("nrlc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let opts = CodegenOptions {
        style,
        schedule,
        sample_params: vec![sample],
    };
    let result = if emit_rust {
        // The Rust emitter needs the parsed program and full-collapse
        // spec — resolved through the global plan cache like the C path.
        parse(&src)
            .map_err(|e| format!("parse error: {e}"))
            .and_then(|prog| {
                let nest = prog.to_nest().map_err(|e| format!("lowering error: {e}"))?;
                let plan = PlanCache::global()
                    .get_or_analyze(&nest, PlanContext::default())
                    .map_err(|e| format!("collapse error: {e}"))?;
                generate_rust(&prog, plan.spec(), &opts).map_err(|e| format!("formula error: {e}"))
            })
    } else {
        collapse_source(&src, &opts).map_err(|e| e.to_string())
    };
    match result {
        Ok(code) => {
            println!("{code}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("nrlc: {e}");
            ExitCode::FAILURE
        }
    }
}
