//! Emission of collapsed source code (the paper's Figs. 3, 4 and 7).

use crate::ast::ProgramAst;
use crate::formulas::{build_formulas, total_expr, FormulaError, LevelFormula};
use nrl_core::CollapseSpec;

/// Which of the paper's code shapes to emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodegenStyle {
    /// Fig. 3: recover the indices with the root formulas at **every**
    /// iteration.
    Naive,
    /// Fig. 4 / §V: recover once per thread (guarded by a
    /// `firstprivate` flag) and advance indices by incrementation.
    Chunked,
    /// §V, second listing: `schedule(static, CHUNK)` with recovery at
    /// every chunk boundary (`(pc − 1) % CHUNK == 0`).
    ChunkedBy(u64),
    /// §VI.A: recover once per thread, pre-compute `vlength` index
    /// tuples into thread-private arrays by incrementation, then run
    /// the bodies under `#pragma omp simd`.
    Simd(usize),
    /// §VI.B: the GPU-warp scheme — `W` lanes execute interleaved
    /// ranks; each lane recovers once and then advances by `W`
    /// incrementations between its iterations. Emitted as the paper's
    /// portable C simulation of a warp.
    GpuWarp(usize),
}

/// Options controlling emission.
#[derive(Clone, Debug)]
pub struct CodegenOptions {
    /// Code shape (Fig. 3 vs Fig. 4).
    pub style: CodegenStyle,
    /// Text placed in the OpenMP `schedule(…)` clause.
    pub schedule: String,
    /// Parameter values used only to *select root branches* (must give a
    /// non-empty domain; the emitted code itself stays parametric).
    pub sample_params: Vec<i64>,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            style: CodegenStyle::Chunked,
            schedule: "static".to_string(),
            sample_params: vec![100],
        }
    }
}

fn iter_names(spec: &CollapseSpec) -> Vec<String> {
    let d = spec.nest().depth();
    spec.nest().space().names()[..d].to_vec()
}

/// Emits the recovery assignments (one per level).
fn recovery_c(formulas: &[LevelFormula], indent: &str) -> String {
    let mut out = String::new();
    for f in formulas {
        if f.exact {
            out.push_str(&format!("{indent}{} = {};\n", f.var, f.expr.to_c(false)));
        } else {
            out.push_str(&format!(
                "{indent}{} = {};\n",
                f.var,
                f.expr.to_c(f.needs_complex)
            ));
        }
    }
    out
}

/// Emits the odometer incrementation of the original nest (Fig. 4's
/// `j++; if (j >= N) { i++; j = i + 1; }`), generalized to any depth.
fn incrementation_c(spec: &CollapseSpec, indent: &str) -> String {
    let nest = spec.nest();
    let d = nest.depth();
    let names = iter_names(spec);
    let mut out = String::new();
    // Innermost increments; each carry recomputes inner lower bounds.
    out.push_str(&format!("{indent}{}++;\n", names[d - 1]));
    for k in (1..d).rev() {
        let ub = nest.upper(k).render();
        out.push_str(&format!("{indent}if ({} > {}) {{\n", names[k], ub));
        out.push_str(&format!("{indent}  {}++;\n", names[k - 1]));
        // Re-descend: reset levels k..d−1 to their lower bounds (in
        // order, since lower bounds may use the freshly updated outers).
        for (q, name) in names.iter().enumerate().take(d).skip(k) {
            out.push_str(&format!("{indent}  {name} = {};\n", nest.lower(q).render()));
        }
        out.push_str(&format!("{indent}}}\n"));
    }
    out
}

/// Renders the non-collapsed inner loops (`collapse(c)` with
/// `c < depth`) as plain C `for` headers wrapped around the body.
fn inner_loops_c(prog: &ProgramAst, c: usize, body: &str, indent: &str) -> String {
    let mut out = String::new();
    for (depth, l) in prog.loops[c..].iter().enumerate() {
        let pad = format!("{indent}{}", "  ".repeat(depth));
        let cmp = if l.upper_inclusive { "<=" } else { "<" };
        out.push_str(&format!(
            "{pad}for ({v} = {lo}; {v} {cmp} {hi}; {v}++)\n",
            v = l.var,
            lo = l.lower.render(),
            hi = l.upper.render()
        ));
    }
    let pad = format!("{indent}{}", "  ".repeat(prog.loops.len() - c));
    out.push_str(&format!("{pad}{{ {body} }}\n"));
    out
}

/// Generates the collapsed C function for a parsed program.
///
/// The emitted code mirrors the paper's figures: a single `pc` loop with
/// an OpenMP pragma, recovery of the original indices (complex math where
/// required), and — in [`CodegenStyle::Chunked`] — the first-iteration
/// guard plus incrementation. When the program carries a
/// `collapse(c)` pragma with `c` smaller than the nest depth, `spec`
/// must describe the **prefix** nest
/// ([`NestSpec::prefix`](nrl_polyhedra::NestSpec::prefix)) and the
/// remaining loops are re-emitted verbatim inside the body (the paper's
/// `ltmp` configuration).
pub fn generate_c(
    prog: &ProgramAst,
    spec: &CollapseSpec,
    opts: &CodegenOptions,
) -> Result<String, FormulaError> {
    let formulas = build_formulas(spec, &opts.sample_params)?;
    let names = iter_names(spec);
    let c = spec.nest().depth();
    assert_eq!(
        c,
        prog.collapse.unwrap_or(prog.loops.len()),
        "spec depth must match the program's collapse clause (pass the prefix nest)"
    );
    let needs_complex = formulas.iter().any(|f| f.needs_complex);
    let total = total_expr(spec).to_c(false);
    let body = if prog.body.is_empty() {
        "/* body */;".to_string()
    } else {
        prog.body.clone()
    };
    let params_decl: Vec<String> = prog.params.iter().map(|p| format!("long {p}")).collect();
    let all_iters: Vec<String> = prog.loops.iter().map(|l| l.var.clone()).collect();
    let locals = all_iters.join(", ");
    let schedule = prog
        .schedule
        .clone()
        .unwrap_or_else(|| opts.schedule.clone());
    let _ = &names;

    let mut out = String::new();
    out.push_str("/* Generated by nrl-dsl: automatic collapsing of a non-rectangular loop nest\n");
    out.push_str(" * (Clauss, Altintas, Kuhn - IPDPS 2017). Do not edit by hand. */\n");
    out.push_str("#include <math.h>\n");
    if needs_complex {
        out.push_str("#include <complex.h>\n");
    }
    out.push_str(&format!(
        "\nvoid collapsed_nest({})\n{{\n",
        params_decl.join(", ")
    ));
    out.push_str(&format!("  long pc, {locals};\n"));
    let payload = if c < prog.loops.len() {
        inner_loops_c(prog, c, &body, "    ")
    } else {
        format!("    {{ {body} }}\n")
    };
    match opts.style {
        CodegenStyle::Naive => {
            out.push_str(&format!(
                "  #pragma omp parallel for private({locals}) schedule({schedule})\n"
            ));
            out.push_str(&format!("  for (pc = 1; pc <= {total}; pc++) {{\n"));
            out.push_str(&recovery_c(&formulas, "    "));
            out.push_str(&payload);
            out.push_str("  }\n");
        }
        CodegenStyle::Chunked => {
            out.push_str("  int first_iteration = 1;\n");
            out.push_str(&format!(
                "  #pragma omp parallel for private({locals}) firstprivate(first_iteration) schedule({schedule})\n"
            ));
            out.push_str(&format!("  for (pc = 1; pc <= {total}; pc++) {{\n"));
            out.push_str("    if (first_iteration) {\n");
            out.push_str(&recovery_c(&formulas, "      "));
            out.push_str("      first_iteration = 0;\n");
            out.push_str("    }\n");
            out.push_str(&payload);
            out.push_str(&incrementation_c(spec, "    "));
            out.push_str("  }\n");
        }
        CodegenStyle::ChunkedBy(chunk) => {
            // §V second listing: recovery fires at every chunk
            // boundary, so any schedule distributing whole chunks
            // (here static,CHUNK) stays correct.
            out.push_str(&format!(
                "  #pragma omp parallel for private({locals}) schedule(static, {chunk})\n"
            ));
            out.push_str(&format!("  for (pc = 1; pc <= {total}; pc++) {{\n"));
            out.push_str(&format!("    if ((pc - 1) % {chunk} == 0) {{\n"));
            out.push_str(&recovery_c(&formulas, "      "));
            out.push_str("    }\n");
            out.push_str(&payload);
            out.push_str(&incrementation_c(spec, "    "));
            out.push_str("  }\n");
        }
        CodegenStyle::Simd(vlength) => {
            let vlength = vlength.max(1);
            // §VI.A: fill thread-private tuple buffers by
            // incrementation, then a separate simd loop over the
            // buffered tuples.
            let buf_decls: Vec<String> =
                names.iter().map(|n| format!("T_{n}[{vlength}]")).collect();
            out.push_str("  int first_iteration = 1;\n");
            out.push_str(&format!("  long v, {};\n", buf_decls.join(", ")));
            out.push_str(&format!(
                "  #pragma omp parallel for private({locals}, v, {tbufs}) firstprivate(first_iteration) schedule({schedule})\n",
                tbufs = names
                    .iter()
                    .map(|n| format!("T_{n}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str(&format!(
                "  for (pc = 1; pc <= {total}; pc += {vlength}) {{\n"
            ));
            out.push_str("    if (first_iteration) {\n");
            out.push_str(&recovery_c(&formulas, "      "));
            out.push_str("      first_iteration = 0;\n");
            out.push_str("    }\n");
            out.push_str(&format!(
                "    long vend = pc + {vlength} - 1 <= {total} ? pc + {vlength} - 1 : ({total});\n"
            ));
            out.push_str("    for (v = pc; v <= vend; v++) {\n");
            for n in &names {
                out.push_str(&format!("      T_{n}[v - pc] = {n};\n"));
            }
            out.push_str(&incrementation_c(spec, "      "));
            out.push_str("    }\n");
            out.push_str("    /* vectorization */\n");
            out.push_str("    #pragma omp simd\n");
            out.push_str("    for (v = pc; v <= vend; v++) {\n");
            for n in &names {
                out.push_str(&format!("      long {n} = T_{n}[v - pc];\n"));
            }
            out.push_str(&payload);
            out.push_str("    }\n");
            out.push_str("  }\n");
        }
        CodegenStyle::GpuWarp(warp) => {
            let warp = warp.max(1);
            // §VI.B: lane t runs ranks t+1, t+1+W, …; recovery once per
            // lane, then W incrementations between iterations. Emitted
            // as the paper's portable simulation (the outer `thread`
            // loop maps to warp lanes on a real GPU).
            out.push_str("  long thread, inc;\n");
            out.push_str("  /* parallel threads in a warp */\n");
            out.push_str(&format!(
                "  #pragma omp parallel for private(pc, inc, {locals}) schedule(static)\n"
            ));
            out.push_str(&format!(
                "  for (thread = 0; thread < {warp}; thread++) {{\n"
            ));
            out.push_str(&format!(
                "    for (pc = thread + 1; pc <= {total}; pc += {warp}) {{\n"
            ));
            out.push_str("      if (pc == thread + 1) {\n");
            out.push_str(&recovery_c(&formulas, "        "));
            out.push_str("      }\n");
            out.push_str(&payload);
            out.push_str(&format!(
                "      for (inc = 0; inc < {warp} && pc + inc + 1 <= {total}; inc++) {{\n"
            ));
            out.push_str(&incrementation_c(spec, "        "));
            out.push_str("      }\n");
            out.push_str("    }\n");
            out.push_str("  }\n");
        }
    }
    out.push_str("}\n");
    Ok(out)
}

/// Generates a standalone Rust function executing the collapsed loop
/// sequentially with the closed-form recovery (useful as a reviewable
/// artifact; parallel execution should go through `nrl_core::exec`).
pub fn generate_rust(
    prog: &ProgramAst,
    spec: &CollapseSpec,
    opts: &CodegenOptions,
) -> Result<String, FormulaError> {
    let formulas = build_formulas(spec, &opts.sample_params)?;
    let names = iter_names(spec);
    let total = total_expr(spec).to_c(false); // C-style arithmetic is valid Rust for +,-,*
    let params_decl: Vec<String> = prog.params.iter().map(|p| format!("{p}: f64")).collect();
    let mut out = String::new();
    out.push_str("// Generated by nrl-dsl. The body is invoked with the recovered indices.\n");
    out.push_str("use nrl_solver::Complex64;\n\n");
    out.push_str("#[inline]\nfn c(x: f64) -> Complex64 { Complex64::real(x) }\n\n");
    out.push_str(&format!(
        "pub fn collapsed_nest(mut body: impl FnMut({}), {})\n{{\n",
        names.iter().map(|_| "i64").collect::<Vec<_>>().join(", "),
        params_decl.join(", ")
    ));
    out.push_str(&format!("    let total = ({total}) as i64;\n"));
    out.push_str("    for pc in 1..=total {\n");
    out.push_str("        let pc = pc as f64;\n");
    for f in &formulas {
        if f.exact {
            out.push_str(&format!(
                "        let {} = ({}) as i64; let {} = {} as f64;\n",
                f.var,
                rust_float_expr(&f.expr.to_rust()),
                f.var,
                f.var
            ));
        } else {
            out.push_str(&format!(
                "        let {} = ({}) as i64; let {} = {} as f64;\n",
                f.var,
                f.expr.to_rust(),
                f.var,
                f.var
            ));
        }
    }
    let args: Vec<String> = names.iter().map(|n| format!("{n} as i64")).collect();
    out.push_str(&format!("        body({});\n", args.join(", ")));
    out.push_str("    }\n}\n");
    Ok(out)
}

/// The exact integer formulas are real-valued; strip them down from the
/// complex wrapper by taking the real part at the top.
fn rust_float_expr(complex_expr: &str) -> String {
    format!("({complex_expr}).re")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const CORRELATION_SRC: &str = "params N;
        for (i = 0; i < N - 1; i++)
          for (j = i + 1; j < N; j++)
          { a[i][j] += b[k][i] * c[k][j]; }";

    fn correlation() -> (ProgramAst, CollapseSpec) {
        let prog = parse(CORRELATION_SRC).unwrap();
        let spec = CollapseSpec::new(&prog.to_nest().unwrap()).unwrap();
        (prog, spec)
    }

    #[test]
    fn naive_c_matches_figure3_shape() {
        let (prog, spec) = correlation();
        let opts = CodegenOptions {
            style: CodegenStyle::Naive,
            ..CodegenOptions::default()
        };
        let code = generate_c(&prog, &spec, &opts).unwrap();
        assert!(code.contains("#pragma omp parallel for private(i, j) schedule(static)"));
        assert!(code.contains("for (pc = 1; pc <="));
        assert!(code.contains("i = floor("));
        assert!(code.contains("sqrt("));
        assert!(code.contains("a[i][j] += b[k][i] * c[k][j];"));
        // The collapsed bound is (N² − N)/2 in some arrangement.
        assert!(code.contains("pc <= ("), "total bound inline: {code}");
    }

    #[test]
    fn chunked_c_matches_figure4_shape() {
        let (prog, spec) = correlation();
        let code = generate_c(&prog, &spec, &CodegenOptions::default()).unwrap();
        assert!(code.contains("int first_iteration = 1;"));
        assert!(code.contains("firstprivate(first_iteration)"));
        assert!(code.contains("if (first_iteration)"));
        assert!(code.contains("first_iteration = 0;"));
        // Incrementation: j++; if (j > N - 1) { i++; j = i + 1; }
        assert!(code.contains("j++;"));
        assert!(code.contains("if (j > N - 1)"));
        assert!(code.contains("j = i + 1;"));
    }

    #[test]
    fn figure6_c_uses_complex_functions() {
        let src = "params N;
            for (i = 0; i < N - 1; i++)
              for (j = 0; j < i + 1; j++)
                for (k = j; k < i + 1; k++)
                  { S(i, j, k); }";
        let prog = parse(src).unwrap();
        let spec = CollapseSpec::new(&prog.to_nest().unwrap()).unwrap();
        let opts = CodegenOptions {
            style: CodegenStyle::Naive,
            sample_params: vec![12],
            ..CodegenOptions::default()
        };
        let code = generate_c(&prog, &spec, &opts).unwrap();
        assert!(code.contains("#include <complex.h>"), "{code}");
        assert!(code.contains("creal("));
        assert!(code.contains("csqrt(") || code.contains("cpow("));
    }

    #[test]
    fn rust_codegen_emits_compilable_shape() {
        let (prog, spec) = correlation();
        let code = generate_rust(&prog, &spec, &CodegenOptions::default()).unwrap();
        assert!(code.contains("pub fn collapsed_nest"));
        assert!(code.contains("for pc in 1..=total"));
        assert!(code.contains("Complex64"));
        assert!(code.contains("body(i as i64, j as i64);"));
    }

    #[test]
    fn chunked_by_matches_section5_second_listing() {
        let (prog, spec) = correlation();
        let opts = CodegenOptions {
            style: CodegenStyle::ChunkedBy(256),
            ..CodegenOptions::default()
        };
        let code = generate_c(&prog, &spec, &opts).unwrap();
        assert!(code.contains("schedule(static, 256)"), "{code}");
        assert!(code.contains("if ((pc - 1) % 256 == 0)"), "{code}");
        // Recovery inside the guard, incrementation after the body.
        assert!(code.contains("i = floor("));
        assert!(code.contains("j++;"));
        // No firstprivate flag in this scheme.
        assert!(!code.contains("first_iteration"));
    }

    #[test]
    fn simd_matches_section6a_listing() {
        let (prog, spec) = correlation();
        let opts = CodegenOptions {
            style: CodegenStyle::Simd(8),
            ..CodegenOptions::default()
        };
        let code = generate_c(&prog, &spec, &opts).unwrap();
        // pc advances by vlength; tuples buffered per iterator.
        assert!(code.contains("pc += 8"), "{code}");
        assert!(code.contains("T_i[8]") && code.contains("T_j[8]"), "{code}");
        assert!(code.contains("T_i[v - pc] = i;"), "{code}");
        assert!(code.contains("#pragma omp simd"), "{code}");
        assert!(code.contains("long i = T_i[v - pc];"), "{code}");
        // Recovery still fires once per thread.
        assert!(code.contains("if (first_iteration)"));
        // The tail batch is clamped to the total.
        assert!(code.contains("vend"), "{code}");
    }

    #[test]
    fn gpu_warp_matches_section6b_listing() {
        let (prog, spec) = correlation();
        let opts = CodegenOptions {
            style: CodegenStyle::GpuWarp(32),
            ..CodegenOptions::default()
        };
        let code = generate_c(&prog, &spec, &opts).unwrap();
        assert!(code.contains("/* parallel threads in a warp */"), "{code}");
        assert!(code.contains("for (thread = 0; thread < 32; thread++)"));
        assert!(code.contains("for (pc = thread + 1; pc <="));
        assert!(code.contains("pc += 32"), "{code}");
        assert!(
            code.contains("if (pc == thread + 1)"),
            "lane recovery: {code}"
        );
        // W incrementations between a lane's iterations.
        assert!(code.contains("for (inc = 0; inc < 32"), "{code}");
    }

    #[test]
    fn simd_vlength_zero_is_clamped() {
        let (prog, spec) = correlation();
        let opts = CodegenOptions {
            style: CodegenStyle::Simd(0),
            ..CodegenOptions::default()
        };
        let code = generate_c(&prog, &spec, &opts).unwrap();
        assert!(
            code.contains("pc += 1"),
            "vlength 0 must clamp to 1: {code}"
        );
    }

    #[test]
    fn schedule_clause_is_configurable() {
        let (prog, spec) = correlation();
        let opts = CodegenOptions {
            schedule: "static,256".to_string(),
            ..CodegenOptions::default()
        };
        let code = generate_c(&prog, &spec, &opts).unwrap();
        assert!(code.contains("schedule(static,256)"));
    }
}
