//! Property tests for the DSL: parser round-trips and formula
//! equivalence on randomly generated nest sources.

use nrl_core::CollapseSpec;
use nrl_dsl::{build_formulas, generate_c, parse, CodegenOptions, CodegenStyle};
use proptest::prelude::*;
use std::collections::HashMap;

/// Generates a random valid 2-deep source (triangular-ish family) plus
/// a parameter value giving a non-empty valid domain.
fn arb_source() -> impl Strategy<Value = (String, i64)> {
    (
        0i64..3,   // outer lower
        4i64..9,   // outer extent beyond lower
        0i64..2,   // inner lower slope on i
        0i64..3,   // inner lower offset
        1i64..3,   // inner upper slope numerator (j < slope*i + N…)
        10i64..25, // N
    )
        .prop_map(|(a, ext, c, e, d, n)| {
            let src = format!(
                "params N;\n\
                 for (i = {a}; i < {b}; i++)\n\
                   for (j = {c}*i + {e}; j < {d}*i + N; j++)\n\
                   {{ body; }}",
                a = a,
                b = a + ext,
                c = c,
                e = e,
                d = d,
            );
            (src, n)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser is total: arbitrary input produces `Ok` or `Err`,
    /// never a panic (robustness against malformed tool input).
    #[test]
    fn parser_never_panics(src in "\\PC{0,120}") {
        let _ = parse(&src);
    }

    /// Same for near-miss inputs built from the language's own tokens.
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            proptest::sample::select(vec![
                "for", "(", ")", ";", "i", "j", "N", "=", "<", "<=", "++",
                "+", "-", "*", "{", "}", "0", "1", "42", "params", ",",
            ]),
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse(&src);
    }

    #[test]
    fn parse_lower_enumerate_roundtrip((src, n) in arb_source()) {
        let prog = parse(&src).expect("generated source parses");
        let nest = prog.to_nest().expect("generated source lowers");
        // Domain sanity + enumerability.
        prop_assume!(nest.check_trip_counts(&[n], false).is_ok());
        let count = nest.count_enumerated(&[n]);
        let spec = CollapseSpec::new(&nest).expect("collapsible");
        let collapsed = spec.bind(&[n]).expect("bind");
        prop_assert_eq!(collapsed.total() as u128, count);
    }

    /// Every emission style generates for every valid source, and the
    /// emitted text carries that style's structural landmarks.
    #[test]
    fn all_codegen_styles_emit((src, n) in arb_source(), vlen in 1usize..16, warp in 1usize..64) {
        let prog = parse(&src).expect("parses");
        let nest = prog.to_nest().expect("lowers");
        prop_assume!(nest.check_trip_counts(&[n], false).is_ok());
        let spec = CollapseSpec::new(&nest).expect("collapsible");
        prop_assume!(spec.bind(&[n]).map(|c| c.total() > 0).unwrap_or(false));
        for style in [
            CodegenStyle::Naive,
            CodegenStyle::Chunked,
            CodegenStyle::ChunkedBy(vlen as u64 * 17),
            CodegenStyle::Simd(vlen),
            CodegenStyle::GpuWarp(warp),
        ] {
            let opts = CodegenOptions { style, sample_params: vec![n], ..CodegenOptions::default() };
            let code = generate_c(&prog, &spec, &opts).expect("emits");
            prop_assert!(code.contains("for (pc"), "{style:?}: {code}");
            let landmark = match style {
                CodegenStyle::Naive => None,
                CodegenStyle::Chunked => Some("firstprivate(first_iteration)".to_string()),
                CodegenStyle::ChunkedBy(c) => Some(format!("% {c} == 0")),
                CodegenStyle::Simd(v) => Some(format!("pc += {}", v.max(1))),
                CodegenStyle::GpuWarp(w) => Some(format!("pc += {}", w.max(1))),
            };
            if let Some(mark) = landmark {
                prop_assert!(code.contains(&mark), "missing landmark in {style:?}");
            } else {
                prop_assert!(!code.contains("first_iteration"));
            }
            if let CodegenStyle::Simd(_) = style {
                prop_assert!(code.contains("#pragma omp simd"));
            }
        }
    }

    #[test]
    fn formulas_recover_all_indices((src, n) in arb_source()) {
        let prog = parse(&src).expect("parses");
        let nest = prog.to_nest().expect("lowers");
        prop_assume!(nest.check_trip_counts(&[n], false).is_ok());
        let spec = CollapseSpec::new(&nest).expect("collapsible");
        let collapsed = spec.bind(&[n]).expect("bind");
        prop_assume!(collapsed.total() > 0);
        let formulas = build_formulas(&spec, &[n]).expect("formulas");
        // Validate the emitted formulas on every rank of the domain.
        for pc in 1..=collapsed.total() {
            let point = collapsed.unrank(pc);
            let mut bind: HashMap<String, f64> = HashMap::new();
            bind.insert("pc".into(), pc as f64);
            bind.insert("N".into(), n as f64);
            let i = formulas[0].expr.eval(&bind);
            prop_assert_eq!((i.re + 1e-9).floor() as i64, point[0], "pc={} i", pc);
            bind.insert("i".into(), point[0] as f64);
            let j = formulas[1].expr.eval(&bind);
            prop_assert_eq!((j.re + 1e-9).floor() as i64, point[1], "pc={} j", pc);
        }
    }
}
