//! Recording front: runtime config, id allocators, the per-thread ring
//! registry, span guards, and chrome-trace export.
//!
//! The hot-path contract: with recording disabled, [`span`] is one
//! relaxed atomic load and returns `None` — no clock read, no
//! thread-local touch, no allocation. Enabled, a span costs two clock
//! reads, two id/counter bumps and one ring push. Instrumented crates
//! additionally compile the whole probe away when their `obs-trace`
//! feature is off, so the shipping default pays nothing at all.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::now_ns;
use crate::ring::{Event, EventRing};

/// Events each per-thread ring can hold before drop-oldest engages.
/// At one event per *chunk* (the instrumentation granularity rule),
/// 4096 covers every workload in the repo's bench suite per drain.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------------
// Runtime config

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Runtime gate for span recording. Compiled-in probes check this
/// before touching the clock or a ring; the disabled path is exactly
/// one relaxed load.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig;

impl TraceConfig {
    /// Is recording currently enabled?
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turn recording on or off (any thread; takes effect at each
    /// probe's next enabled-check).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Ids

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_POOL: AtomicU32 = AtomicU32::new(1);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// Identifies one request end-to-end across threads (0 = none).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The "no trace" id.
    pub const NONE: TraceId = TraceId(0);

    /// Allocate a fresh process-unique id (never 0).
    pub fn next() -> TraceId {
        TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
    }

    /// True for [`TraceId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Identifies one emitted span (unique per process, never 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Allocate a fresh process-unique id.
    pub fn next() -> SpanId {
        SpanId(NEXT_SPAN.fetch_add(1, Ordering::Relaxed))
    }
}

/// Allocate a process-unique pool id for chrome-trace `pid` grouping.
/// Pid 0 is reserved for caller/service threads that belong to no
/// pool; each `ThreadPool` takes the next id at construction.
pub fn next_pool_id() -> u32 {
    NEXT_POOL.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Registry: one ring + metadata per recording thread

struct ThreadMeta {
    pid: u32,
    tid: u32,
    name: String,
}

struct Registered {
    ring: EventRing,
    meta: Mutex<ThreadMeta>,
}

fn registry() -> &'static Mutex<Vec<Arc<Registered>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Registered>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<Registered>>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&Registered) -> R) -> R {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let reg = l.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let reg = Arc::new(Registered {
                ring: EventRing::with_capacity(DEFAULT_RING_CAPACITY),
                meta: Mutex::new(ThreadMeta {
                    pid: 0,
                    tid,
                    name: format!("thread-{tid}"),
                }),
            });
            registry().lock().unwrap().push(reg.clone());
            reg
        });
        f(reg)
    })
}

/// Bind the calling thread's timeline to `(pid, tid, name)` in the
/// export: pool workers call this at startup with their pool's
/// [`next_pool_id`] and worker index, so the chrome trace shows one
/// process row per pool and one thread row per worker. Threads that
/// never call it appear under pid 0 with an auto-assigned tid.
pub fn set_thread_meta(pid: u32, tid: u32, name: &str) {
    with_local(|reg| {
        let mut m = reg.meta.lock().unwrap();
        m.pid = pid;
        m.tid = tid;
        m.name = name.to_string();
    });
}

// ---------------------------------------------------------------------------
// Recording

/// A live span: created by [`span`]/[`span_traced`], emits one event
/// into the calling thread's ring when dropped.
#[must_use = "a span records its interval when dropped"]
#[derive(Debug)]
pub struct Span {
    cat: &'static str,
    name: &'static str,
    t0: u64,
    trace: u64,
}

impl Span {
    /// The trace id this span carries (0 = none).
    pub fn trace(&self) -> u64 {
        self.trace
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ev = Event {
            cat: self.cat,
            name: self.name,
            t0: self.t0,
            t1: now_ns(),
            span: SpanId::next().0,
            trace: self.trace,
        };
        with_local(|reg| reg.ring.push(&ev));
    }
}

/// Open a span, or `None` (one relaxed load) when recording is off.
/// Bind the result to a `_`-prefixed local; the interval closes and
/// records when the guard drops.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Option<Span> {
    if !TraceConfig::enabled() {
        return None;
    }
    Some(Span {
        cat,
        name,
        t0: now_ns(),
        trace: 0,
    })
}

/// [`span`], tagged with a request [`TraceId`] (pass the raw `u64`;
/// 0 means untagged).
#[inline]
pub fn span_traced(cat: &'static str, name: &'static str, trace: u64) -> Option<Span> {
    if !TraceConfig::enabled() {
        return None;
    }
    Some(Span {
        cat,
        name,
        t0: now_ns(),
        trace,
    })
}

/// Record an interval measured elsewhere (e.g. a queue wait whose
/// start lives on the submitting thread); attributed to the calling
/// thread's timeline. No-op (one relaxed load) when recording is off.
#[inline]
pub fn emit(cat: &'static str, name: &'static str, t0: u64, t1: u64, trace: u64) {
    if !TraceConfig::enabled() {
        return;
    }
    let ev = Event {
        cat,
        name,
        t0,
        t1: t1.max(t0),
        span: SpanId::next().0,
        trace,
    };
    with_local(|reg| reg.ring.push(&ev));
}

// ---------------------------------------------------------------------------
// Draining + export

/// One drained event with its thread-of-origin coordinates.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Pool id (0 = caller/service threads outside any pool).
    pub pid: u32,
    /// Thread id within the pid row.
    pub tid: u32,
    /// The recorded span.
    pub ev: Event,
}

/// Everything one drain collected: events (per-ring push order),
/// thread names, and the drop count accumulated since the last drain.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Drained events from every registered ring.
    pub events: Vec<TraceEvent>,
    /// `(pid, tid, name)` rows for every thread that ever recorded.
    pub threads: Vec<(u32, u32, String)>,
    /// Events lost to ring drop-oldest since the previous drain.
    pub dropped: u64,
}

/// Drain every registered ring (concurrently safe with producers) and
/// reset their drop counters into the returned [`Trace::dropped`].
pub fn drain() -> Trace {
    let rings: Vec<Arc<Registered>> = registry().lock().unwrap().clone();
    let mut out = Trace::default();
    for reg in &rings {
        let (pid, tid, name) = {
            let m = reg.meta.lock().unwrap();
            (m.pid, m.tid, m.name.clone())
        };
        reg.ring
            .drain(|ev| out.events.push(TraceEvent { pid, tid, ev }));
        out.dropped += reg.ring.take_dropped();
        out.threads.push((pid, tid, name));
    }
    out
}

/// An enable→record→drain bracket.
///
/// `begin()` clears stale buffered events and turns recording on;
/// `end()` turns it off and returns the drained [`Trace`]. Sessions
/// are process-global (the gate is one flag); nesting two sessions
/// merely extends the outer one's window.
#[derive(Debug)]
pub struct TraceSession(());

impl TraceSession {
    /// Clear stale events, then enable recording.
    pub fn begin() -> TraceSession {
        for reg in registry().lock().unwrap().iter() {
            reg.ring.clear();
            reg.ring.take_dropped();
        }
        TraceConfig::set_enabled(true);
        TraceSession(())
    }

    /// Disable recording and drain everything recorded meanwhile.
    pub fn end(self) -> Trace {
        TraceConfig::set_enabled(false);
        drain()
    }
}

impl Trace {
    /// Render as chrome://tracing "trace event format" JSON: one `"X"`
    /// (complete) event per span with `ts`/`dur` in microseconds, plus
    /// `"M"` metadata rows naming each process (pool) and thread
    /// (worker). Load the output in Perfetto or chrome://tracing.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 160);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut seen_pids: Vec<u32> = Vec::new();
        for &(pid, tid, ref name) in &self.threads {
            if !seen_pids.contains(&pid) {
                seen_pids.push(pid);
                push_sep(&mut out, &mut first);
                let pname = if pid == 0 {
                    "nrl-callers".to_string()
                } else {
                    format!("nrl-pool-{pid}")
                };
                out.push_str(&format!(
                    "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    esc(&pname)
                ));
            }
            push_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                esc(name)
            ));
        }
        for te in &self.events {
            push_sep(&mut out, &mut first);
            let ts = te.ev.t0 as f64 / 1e3;
            let dur = te.ev.t1.saturating_sub(te.ev.t0) as f64 / 1e3;
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\
                 \"ts\":{ts:.3},\"dur\":{dur:.3},\
                 \"args\":{{\"span\":{},\"trace\":{}}}}}",
                esc(te.ev.name),
                esc(te.ev.cat),
                te.pid,
                te.tid,
                te.ev.span,
                te.ev.trace,
            ));
        }
        out.push_str("]}");
        out
    }
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Minimal JSON string escaping (names are static identifiers, but
/// thread names are caller strings).
fn esc(s: &str) -> String {
    let mut o = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
            c => o.push(c),
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry and the enabled flag are process-global, so the
    // tests below serialize on one lock to keep their drains disjoint.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = test_lock();
        TraceConfig::set_enabled(false);
        assert!(span("t", "t.off").is_none());
        emit("t", "t.off", 1, 2, 0);
        let tr = drain();
        assert!(
            tr.events.iter().all(|e| e.ev.name != "t.off"),
            "disabled probe leaked an event"
        );
    }

    #[test]
    fn session_brackets_spans_and_exports_json() {
        let _g = test_lock();
        let session = TraceSession::begin();
        set_thread_meta(0, 7, "test-main");
        {
            let _outer = span_traced("t", "t.outer", 42);
            let _inner = span("t", "t.inner");
        }
        emit("t", "t.emitted", 5, 9, 42);
        let tr = session.end();
        assert!(!TraceConfig::enabled());
        let names: Vec<&str> = tr.events.iter().map(|e| e.ev.name).collect();
        assert!(names.contains(&"t.outer"));
        assert!(names.contains(&"t.inner"));
        assert!(names.contains(&"t.emitted"));
        let outer = tr.events.iter().find(|e| e.ev.name == "t.outer").unwrap();
        let inner = tr.events.iter().find(|e| e.ev.name == "t.inner").unwrap();
        assert_eq!(outer.ev.trace, 42);
        assert!(
            outer.ev.t0 <= inner.ev.t0 && inner.ev.t1 <= outer.ev.t1,
            "inner nests in outer"
        );
        let json = tr.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("test-main"));
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        assert!(!a.is_none() && !b.is_none());
        assert_ne!(SpanId::next(), SpanId::next());
        assert_ne!(next_pool_id(), next_pool_id());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\u000ay");
    }
}
