//! Low-overhead tracing and timing substrate for the nrl workspace.
//!
//! The engine crates can *count* (cache hits, recovery engine routing,
//! reduce chunks, admission buckets) but counting attributes no time.
//! This crate is the missing time axis, built so the instrumented
//! crates can leave their probes compiled in behind the `obs-trace`
//! cargo feature while the *disabled* runtime path stays one relaxed
//! atomic load — the same discipline `fault-inject` set for faults and
//! the PR 6 token poll set for cancellation checks.
//!
//! Pieces:
//!
//! * [`Clock`] / [`now_ns`] — a process-monotonic nanosecond clock
//!   (one `Instant` epoch per process, so timestamps from different
//!   threads share an axis).
//! * [`TraceId`] / [`SpanId`] — cheap atomic id allocators. A
//!   `TraceId` follows one request across threads (caller →
//!   dispatcher → pool workers); a `SpanId` names one emitted span.
//! * [`EventRing`] — a per-thread, fixed-capacity, lock-free ring of
//!   completed [`Event`]s. Single producer (the owning thread),
//!   drained from any thread; when full it **drops oldest**,
//!   advancing the read cursor by CAS and counting the loss in
//!   [`EventRing::dropped`]. No allocation ever happens on the push
//!   path.
//! * [`Hist`] / [`SharedHist`] — log2-bucketed latency histograms
//!   (fixed `[u64; 64]`): record/merge/percentile/render, plus an
//!   atomic variant whose `snapshot()` feeds always-on service
//!   metrics.
//! * [`span`] / [`span_traced`] / [`emit`] — the recording API.
//!   `span` returns a drop-guard that emits one event on scope exit;
//!   `emit` records an interval measured elsewhere (e.g. a queue wait
//!   whose endpoints live on two threads).
//! * [`TraceSession`] / [`Trace`] — enable recording, run work, then
//!   drain every registered ring into a [`Trace`] and export it as
//!   chrome://tracing "trace event" JSON (`Trace::to_chrome_json`),
//!   loadable in Perfetto: one pid per pool, one tid per worker.
//!
//! See `docs/OBSERVABILITY.md` for the span taxonomy and the
//! ring/drain lifecycle.

#![warn(missing_docs)]

mod clock;
mod hist;
mod ring;
mod trace;

pub use clock::{now_ns, Clock};
pub use hist::{Hist, SharedHist};
pub use ring::{Event, EventRing};
pub use trace::{
    drain, emit, next_pool_id, set_thread_meta, span, span_traced, Span, SpanId, Trace,
    TraceConfig, TraceEvent, TraceId, TraceSession, DEFAULT_RING_CAPACITY,
};
