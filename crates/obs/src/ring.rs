//! Per-thread lock-free event ring buffers.
//!
//! An [`EventRing`] holds completed spans as fixed-size [`Event`]s in
//! a power-of-two slot array. The contract mirrors how the pool uses
//! it:
//!
//! * **one producer** — the owning thread pushes; no allocation, no
//!   lock, no syscall on the push path;
//! * **any drainer** — a `TraceSession` (or test) drains from another
//!   thread while the producer keeps running;
//! * **drop-oldest** — a full ring overwrites its oldest unread slot
//!   and counts the loss in [`EventRing::dropped`]; recording never
//!   blocks and never grows.
//!
//! Every index in the push sequence is retired exactly once, either
//! by the producer's drop-oldest CAS (counted dropped) or by the
//! drainer's CAS (delivered), so at quiescence
//! `drained + dropped == pushed` — the invariant the wraparound and
//! hammer tests assert.
//!
//! Each slot stores the event fields as individual relaxed atomics
//! guarded by a seqlock-style sequence word (odd = write in progress,
//! `2·(i+1)` = push `i` committed). A drainer copies the raw words,
//! re-validates the sequence, and only then claims the slot — a torn
//! read is detected and retried, never delivered.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

/// One completed span: a closed `[t0, t1]` interval on the
/// [`crate::Clock`] axis, tagged with static category/name strings and
/// the ids that stitch it into a request tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Coarse family, e.g. `"plan"`, `"exec"`, `"pool"`, `"serve"`.
    pub cat: &'static str,
    /// Span name, e.g. `"exec.chunk"` (see `docs/OBSERVABILITY.md`).
    pub name: &'static str,
    /// Start, nanoseconds on the process clock.
    pub t0: u64,
    /// End, nanoseconds on the process clock (`t1 >= t0`).
    pub t1: u64,
    /// This span's id ([`crate::SpanId`]); unique per process.
    pub span: u64,
    /// The request trace this span belongs to, or 0 for none.
    pub trace: u64,
}

/// One slot: a seqlock word plus the event fields as plain atomics
/// (so a racing read is a defined, detectable torn read — not UB).
struct Slot {
    seq: AtomicU64,
    cat_ptr: AtomicUsize,
    cat_len: AtomicUsize,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    t0: AtomicU64,
    t1: AtomicU64,
    span: AtomicU64,
    trace: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            cat_ptr: AtomicUsize::new(0),
            cat_len: AtomicUsize::new(0),
            name_ptr: AtomicUsize::new(0),
            name_len: AtomicUsize::new(0),
            t0: AtomicU64::new(0),
            t1: AtomicU64::new(0),
            span: AtomicU64::new(0),
            trace: AtomicU64::new(0),
        }
    }

    #[inline]
    fn store(&self, ev: &Event) {
        self.cat_ptr
            .store(ev.cat.as_ptr() as usize, Ordering::Relaxed);
        self.cat_len.store(ev.cat.len(), Ordering::Relaxed);
        self.name_ptr
            .store(ev.name.as_ptr() as usize, Ordering::Relaxed);
        self.name_len.store(ev.name.len(), Ordering::Relaxed);
        self.t0.store(ev.t0, Ordering::Relaxed);
        self.t1.store(ev.t1, Ordering::Relaxed);
        self.span.store(ev.span, Ordering::Relaxed);
        self.trace.store(ev.trace, Ordering::Relaxed);
    }

    /// Raw word copy; only materialized into an [`Event`] after the
    /// sequence re-check proves the copy was not torn.
    #[inline]
    fn load_raw(&self) -> (usize, usize, usize, usize, u64, u64, u64, u64) {
        (
            self.cat_ptr.load(Ordering::Relaxed),
            self.cat_len.load(Ordering::Relaxed),
            self.name_ptr.load(Ordering::Relaxed),
            self.name_len.load(Ordering::Relaxed),
            self.t0.load(Ordering::Relaxed),
            self.t1.load(Ordering::Relaxed),
            self.span.load(Ordering::Relaxed),
            self.trace.load(Ordering::Relaxed),
        )
    }
}

/// A fixed-capacity, drop-oldest, single-producer event ring (see
/// module docs for the full contract).
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Total pushes ever (monotone). `head & mask` is the next write slot.
    head: AtomicU64,
    /// Next push index a drainer will deliver; advanced by CAS either
    /// by the producer (drop-oldest) or by a drainer (delivery).
    read: AtomicU64,
    /// Events overwritten before any drainer delivered them.
    dropped: AtomicU64,
}

impl EventRing {
    /// A ring holding up to `capacity` events (rounded up to a power
    /// of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        EventRing {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            read: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to drop-oldest so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered (pushed, neither dropped nor drained).
    pub fn len(&self) -> usize {
        let h = self.head.load(Ordering::Acquire);
        let t = self.read.load(Ordering::Acquire);
        h.saturating_sub(t) as usize
    }

    /// True when no buffered events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push one event. **Single-producer**: only the ring's owning
    /// thread may call this. Never blocks, never allocates; a full
    /// ring retires its oldest unread event into `dropped`.
    pub fn push(&self, ev: &Event) {
        let h = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        // Drop-oldest: claim the read cursor forward until the write
        // slot is free. The CAS race is against a drainer claiming the
        // same index for delivery — whoever wins retires it.
        loop {
            let t = self.read.load(Ordering::Acquire);
            if h.wrapping_sub(t) < cap {
                break;
            }
            if self
                .read
                .compare_exchange(t, t + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        let slot = &self.slots[(h & self.mask) as usize];
        // Seqlock write: odd marks in-progress, 2·(h+1) commits push h.
        slot.seq
            .store(h.wrapping_mul(2).wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        slot.store(ev);
        slot.seq
            .store(h.wrapping_add(1).wrapping_mul(2), Ordering::Release);
        self.head.store(h.wrapping_add(1), Ordering::Release);
    }

    /// Drain every currently-buffered event into `f`, in push order.
    /// Safe to call from any thread, concurrently with the producer.
    /// Returns the number of events delivered.
    pub fn drain(&self, mut f: impl FnMut(Event)) -> u64 {
        let mut delivered = 0u64;
        loop {
            let t = self.read.load(Ordering::Acquire);
            let h = self.head.load(Ordering::Acquire);
            if t == h {
                return delivered;
            }
            let slot = &self.slots[(t & self.mask) as usize];
            let expect = t.wrapping_add(1).wrapping_mul(2);
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != expect {
                // The producer lapped us (or is mid-write of a lap);
                // the read cursor has been (or is being) advanced by
                // its drop-oldest CAS — reload and continue.
                std::hint::spin_loop();
                continue;
            }
            let raw = slot.load_raw();
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s2 != s1 {
                continue;
            }
            // Claim delivery of index t; losing the race means the
            // producer dropped it first — our copy must not be double
            // counted.
            if self
                .read
                .compare_exchange(t, t + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let (cp, cl, np, nl, t0, t1, span, trace) = raw;
                // SAFETY: the seqlock re-check proved this word copy is
                // the untorn image of one committed push, and pushes
                // only ever store pointers/lengths of &'static str.
                let cat = unsafe {
                    std::str::from_utf8_unchecked(std::slice::from_raw_parts(cp as *const u8, cl))
                };
                let name = unsafe {
                    std::str::from_utf8_unchecked(std::slice::from_raw_parts(np as *const u8, nl))
                };
                f(Event {
                    cat,
                    name,
                    t0,
                    t1,
                    span,
                    trace,
                });
                delivered += 1;
            }
        }
    }

    /// Drop all buffered events without delivering them (they are not
    /// counted in `dropped`: this is a deliberate reset, not loss).
    pub fn clear(&self) {
        loop {
            let t = self.read.load(Ordering::Acquire);
            let h = self.head.load(Ordering::Acquire);
            if t >= h {
                return;
            }
            let _ = self
                .read
                .compare_exchange(t, h, Ordering::AcqRel, Ordering::Acquire);
        }
    }

    /// Reset the drop counter, returning the previous value.
    pub fn take_dropped(&self) -> u64 {
        self.dropped.swap(0, Ordering::Relaxed)
    }
}

// SAFETY: all shared state is atomics; the single-producer rule is an
// API contract (violating it interleaves events, it cannot corrupt
// memory — slots are only ever plain word stores).
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> Event {
        Event {
            cat: "t",
            name: "t.ev",
            t0: i,
            t1: i + 1,
            span: i,
            trace: 0,
        }
    }

    #[test]
    fn fifo_within_capacity() {
        let r = EventRing::with_capacity(8);
        for i in 0..5 {
            r.push(&ev(i));
        }
        let mut got = Vec::new();
        let n = r.drain(|e| got.push(e.t0));
        assert_eq!(n, 5);
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.dropped(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn wraparound_drops_oldest_and_accounts_exactly() {
        let r = EventRing::with_capacity(8);
        for i in 0..20 {
            r.push(&ev(i));
        }
        // 8 newest survive; the 12 oldest were dropped, oldest-first.
        assert_eq!(r.dropped(), 12);
        let mut got = Vec::new();
        let drained = r.drain(|e| got.push(e.t0));
        assert_eq!(got, (12..20).collect::<Vec<_>>());
        assert_eq!(drained + r.dropped(), 20, "drained + dropped == pushed");
        assert_eq!(r.pushed(), 20);
    }

    #[test]
    fn interleaved_drain_and_refill() {
        let r = EventRing::with_capacity(4);
        let mut next = 0u64;
        let mut seen = Vec::new();
        for _ in 0..6 {
            for _ in 0..3 {
                r.push(&ev(next));
                next += 1;
            }
            r.drain(|e| seen.push(e.t0));
        }
        // Nothing dropped (drained fast enough), strict push order.
        assert_eq!(r.dropped(), 0);
        assert_eq!(seen, (0..next).collect::<Vec<_>>());
    }

    #[test]
    fn clear_discards_without_counting_drops() {
        let r = EventRing::with_capacity(8);
        for i in 0..6 {
            r.push(&ev(i));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        r.push(&ev(99));
        let mut got = Vec::new();
        r.drain(|e| got.push(e.t0));
        assert_eq!(got, vec![99]);
    }

    #[test]
    fn cross_thread_hammer_accounts_every_event() {
        // 4 producer threads × own ring, one drainer hammering all
        // four concurrently: at quiescence every pushed event is
        // either delivered (in order, untorn) or counted dropped.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        const PUSHES: u64 = 20_000;
        let rings: Vec<Arc<EventRing>> = (0..4)
            .map(|_| Arc::new(EventRing::with_capacity(64)))
            .collect();
        let done = Arc::new(AtomicBool::new(false));

        let producers: Vec<_> = rings
            .iter()
            .cloned()
            .map(|r| {
                std::thread::spawn(move || {
                    for i in 0..PUSHES {
                        r.push(&ev(i));
                    }
                })
            })
            .collect();

        let drainer = {
            let rings: Vec<_> = rings.to_vec();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut delivered = vec![0u64; rings.len()];
                let mut last = vec![None::<u64>; rings.len()];
                loop {
                    let quiescent = done.load(Ordering::Acquire);
                    for (k, r) in rings.iter().enumerate() {
                        delivered[k] += r.drain(|e| {
                            // Untorn: t0/t1/span all derive from one i.
                            assert_eq!(e.t1, e.t0 + 1);
                            assert_eq!(e.span, e.t0);
                            assert_eq!(e.name, "t.ev");
                            // In-order: strictly increasing per ring.
                            if let Some(prev) = last[k] {
                                assert!(e.t0 > prev, "out of order: {} after {prev}", e.t0);
                            }
                            last[k] = Some(e.t0);
                        });
                    }
                    if quiescent {
                        return delivered;
                    }
                }
            })
        };

        for p in producers {
            p.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let delivered = drainer.join().unwrap();
        for (k, r) in rings.iter().enumerate() {
            assert_eq!(
                delivered[k] + r.dropped(),
                PUSHES,
                "ring {k}: delivered {} + dropped {} != pushed {PUSHES}",
                delivered[k],
                r.dropped()
            );
            assert!(r.is_empty());
        }
    }
}
