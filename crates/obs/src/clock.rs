//! Process-monotonic nanosecond clock.
//!
//! Every timestamp in this crate is "nanoseconds since the first call
//! to the clock in this process". Anchoring all threads to one
//! `Instant` epoch keeps cross-thread event timelines on a single
//! axis — chrome-trace viewers sort by raw `ts`, so two threads'
//! spans interleave correctly without any per-thread offset fixup.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-global monotonic clock all spans are stamped with.
#[derive(Clone, Copy, Debug, Default)]
pub struct Clock;

impl Clock {
    /// Nanoseconds since the process epoch (the first clock read).
    ///
    /// Monotone, never negative, wraps after ~584 years of uptime.
    #[inline]
    pub fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Free-function alias for [`Clock::now_ns`].
#[inline]
pub fn now_ns() -> u64 {
    Clock::now_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut prev = now_ns();
        for _ in 0..10_000 {
            let t = now_ns();
            assert!(t >= prev, "clock went backwards: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn clock_advances() {
        let t0 = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t1 = now_ns();
        assert!(t1 - t0 >= 1_000_000, "2ms sleep measured as {}ns", t1 - t0);
    }
}
