//! Log2-bucketed latency histograms.
//!
//! A [`Hist`] is a fixed `[u64; 64]`: value `v` lands in bucket
//! `floor(log2(max(v, 1)))`, so bucket `i` covers `[2^i, 2^(i+1))`
//! (bucket 0 additionally absorbs `v == 0`). That gives full `u64`
//! nanosecond range at constant size, constant-time record, and exact
//! loss-free merge — the three properties a per-verb / per-phase
//! latency family needs to live inside an always-on metrics snapshot.
//! Percentiles are read back as the **upper edge** of the bucket
//! holding the requested rank, i.e. "p95 ≤ x" statements with at most
//! 2x resolution, which is the honest precision class of a log2
//! sketch.
//!
//! [`SharedHist`] is the concurrent variant (relaxed atomic buckets,
//! `snapshot() -> Hist`); recording threads never contend on a lock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets — one per possible `u64` bit position.
pub const BUCKETS: usize = 64;

/// A fixed-size log2 latency histogram (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub const fn new() -> Self {
        Hist {
            buckets: [0; BUCKETS],
        }
    }

    /// The bucket index value `v` lands in: `floor(log2(max(v, 1)))`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (63 - (v | 1).leading_zeros()) as usize
    }

    /// The inclusive upper edge of bucket `i` (`2^(i+1) - 1`, saturating
    /// at `u64::MAX` for the last bucket).
    #[inline]
    pub fn bucket_high(i: usize) -> u64 {
        debug_assert!(i < BUCKETS);
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Fold `other` into `self`. Merging is exact (bucket-wise add),
    /// associative and commutative.
    pub fn merge(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Raw bucket counts (bucket `i` covers `[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) as the upper edge of the bucket
    /// containing that rank, or 0 for an empty histogram.
    ///
    /// Monotone in `p`; `percentile(1.0)` is an upper bound on the
    /// maximum recorded value.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank in 1..=n: the smallest k with cum(k) covering p·n.
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_high(i);
            }
        }
        u64::MAX
    }

    /// One plain-text report line: `label: n=… p50≤… p95≤… p99≤… max≤…`
    /// with nanosecond values rendered human-readable.
    pub fn render(&self, label: &str) -> String {
        let n = self.count();
        if n == 0 {
            return format!("{label}: n=0");
        }
        format!(
            "{label}: n={n} p50\u{2264}{} p95\u{2264}{} p99\u{2264}{} max\u{2264}{}",
            fmt_ns(self.percentile(0.50)),
            fmt_ns(self.percentile(0.95)),
            fmt_ns(self.percentile(0.99)),
            fmt_ns(self.percentile(1.0)),
        )
    }
}

/// Render a nanosecond quantity with a human unit (ns/µs/ms/s).
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}\u{b5}s", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// The concurrent histogram: relaxed atomic buckets, lock-free
/// recording from any thread, exact bucket-wise `snapshot`.
///
/// Snapshots taken while recorders are in flight are consistent per
/// bucket but not across buckets — the same contract as every other
/// counter snapshot in the workspace (`docs/COUNTERS.md`).
#[derive(Debug)]
pub struct SharedHist {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for SharedHist {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedHist {
    /// An empty shared histogram.
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        SharedHist {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Record one observation (relaxed; never blocks).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Hist::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current counts into a plain [`Hist`].
    pub fn snapshot(&self) -> Hist {
        let mut h = Hist::new();
        for (dst, src) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_land_exactly() {
        // 0 and 1 share bucket 0; every power of two opens its bucket
        // and (2^k - 1) closes the previous one.
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 0);
        for k in 1..64usize {
            let lo = 1u64 << k;
            assert_eq!(Hist::bucket_of(lo), k, "2^{k} opens bucket {k}");
            assert_eq!(
                Hist::bucket_of(lo - 1),
                k - 1,
                "2^{k}-1 closes bucket {}",
                k - 1
            );
            if k < 63 {
                assert_eq!(Hist::bucket_of(lo + 1), k, "2^{k}+1 stays in bucket {k}");
            }
        }
        assert_eq!(Hist::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn bucket_high_edges() {
        assert_eq!(Hist::bucket_high(0), 1);
        assert_eq!(Hist::bucket_high(1), 3);
        assert_eq!(Hist::bucket_high(10), 2047);
        assert_eq!(Hist::bucket_high(63), u64::MAX);
        // A value's own bucket upper edge bounds it.
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            assert!(v <= Hist::bucket_high(Hist::bucket_of(v)));
        }
    }

    #[test]
    fn percentile_of_known_distribution() {
        let mut h = Hist::new();
        // 99 fast (bucket of 100 = 6, high edge 127), 1 slow.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.50), 127);
        assert_eq!(h.percentile(0.99), 127);
        assert_eq!(
            h.percentile(1.0),
            Hist::bucket_high(Hist::bucket_of(1_000_000))
        );
    }

    #[test]
    fn empty_hist_is_inert() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.render("x"), "x: n=0");
    }

    #[test]
    fn merge_is_exact_and_associative() {
        let mk = |vals: &[u64]| {
            let mut h = Hist::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 5, 9000, u64::MAX]);
        let b = mk(&[0, 2, 2, 1 << 40]);
        let c = mk(&[17, 1 << 20]);
        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
        let mut ab_c = a;
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.count(), a.count() + b.count() + c.count());
    }

    #[test]
    fn shared_hist_snapshot_matches_serial() {
        let s = SharedHist::new();
        let mut plain = Hist::new();
        for v in [0u64, 1, 2, 77, 4096, 1 << 33] {
            s.record(v);
            plain.record(v);
        }
        assert_eq!(s.snapshot(), plain);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5\u{b5}s");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
