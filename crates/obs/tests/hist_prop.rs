//! Property tests for the log2 histogram: percentile monotonicity,
//! merge associativity/commutativity, and count conservation under
//! arbitrary workloads.

use nrl_obs::Hist;
use proptest::prelude::*;

fn hist_of(vals: &[u64]) -> Hist {
    let mut h = Hist::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentile_is_monotone_in_p(
        vals in prop::collection::vec(0u64..u64::MAX, 1..200),
        // Permilles, so both endpoints 0.0 and 1.0 are generated.
        ps in prop::collection::vec(0u32..=1000, 2..16),
    ) {
        let h = hist_of(&vals);
        let mut sorted: Vec<f64> = ps.iter().map(|&k| k as f64 / 1000.0).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let qs: Vec<u64> = sorted.iter().map(|&p| h.percentile(p)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "percentile not monotone: {:?} from ps {:?}", qs, sorted);
        }
    }

    #[test]
    fn percentile_bounds_every_recorded_value(
        vals in prop::collection::vec(0u64..u64::MAX, 1..200),
    ) {
        let h = hist_of(&vals);
        let max = h.percentile(1.0);
        for &v in &vals {
            prop_assert!(v <= max, "p100 {} below recorded {}", max, v);
        }
        // And p0 is a lower-ish bound: no recorded value's bucket lies
        // strictly below the first non-empty one.
        let p0 = h.percentile(0.0);
        prop_assert!(vals.iter().any(|&v| v <= p0));
    }

    #[test]
    fn merge_is_associative_commutative_and_conserves_counts(
        a in prop::collection::vec(0u64..u64::MAX, 0..100),
        b in prop::collection::vec(0u64..u64::MAX, 0..100),
        c in prop::collection::vec(0u64..u64::MAX, 0..100),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut ab_c = ha;
        ab_c.merge(&hb);
        ab_c.merge(&hc);

        let mut bc = hb;
        bc.merge(&hc);
        let mut a_bc = ha;
        a_bc.merge(&bc);

        let mut ba = hb;
        ba.merge(&ha);
        let mut ab = ha;
        ab.merge(&hb);

        prop_assert_eq!(ab_c, a_bc);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab_c.count() as usize, a.len() + b.len() + c.len());

        // Merged histogram equals the histogram of the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(ab_c, hist_of(&all));
    }

    #[test]
    fn percentile_agrees_with_sorted_rank_up_to_bucket(
        vals in prop::collection::vec(0u64..1_000_000_000, 1..150),
        pk in 0u32..=1000,
    ) {
        let p = pk as f64 / 1000.0;
        // The histogram's p-quantile bucket must contain the exact
        // p-quantile of the raw sample (same rank definition).
        let h = hist_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        let exact = sorted[(rank - 1) as usize];
        let q = h.percentile(p);
        prop_assert!(exact <= q, "exact quantile {} above bucket edge {}", exact, q);
        prop_assert_eq!(
            Hist::bucket_of(exact),
            Hist::bucket_of(q),
            "quantile landed outside its bucket"
        );
    }
}
