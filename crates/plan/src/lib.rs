#![warn(missing_docs)]
//! # nrl-plan — the concurrent plan cache
//!
//! The collapse pipeline splits into an expensive analyze-once half
//! ([`ParamPlan::analyze`]: symbolic ranking sums, parametric
//! lowering, Fourier–Motzkin certificates — see `nrl_core::plan`) and
//! a cheap instantiate-many half
//! ([`ParamPlan::instantiate`]). This crate adds the serving layer on
//! top: [`PlanCache`], a sharded, lock-striped LRU keyed by the nest
//! **shape fingerprint** plus the execution context (schedule +
//! recovery mode), with hit/miss/eviction counters in the
//! `RecoveryCounters` style. Every kernel in the registry and every
//! DSL-built nest resolves its plan through the
//! [global cache](PlanCache::global), so repeated binds of the same
//! shape — the service workload — cost one cache probe and one
//! microsecond-scale instantiation.
//!
//! ```
//! use nrl_plan::{PlanCache, PlanContext};
//! use nrl_polyhedra::NestSpec;
//!
//! let cache = PlanCache::new(4, 8);
//! let nest = NestSpec::correlation();
//! // First touch analyzes; later touches (any thread) hit.
//! let collapsed = cache.collapse(&nest, PlanContext::default(), &[1000]).unwrap();
//! assert_eq!(collapsed.total(), 999 * 1000 / 2);
//! let again = cache.collapse(&nest, PlanContext::default(), &[500]).unwrap();
//! assert_eq!(again.total(), 499 * 500 / 2);
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses), (1, 1));
//! ```

use nrl_core::{BindError, CollapseError, Collapsed, Recovery};
use nrl_parfor::Schedule;
use nrl_polyhedra::NestSpec;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The execution context a plan is cached under. The symbolic plan
/// itself is schedule-independent today, but the key space reserves
/// the axes future context-specialized plans (per-engine calibration,
/// schedule-shaped chunk hints) will occupy — and keeps ablation runs
/// from sharing entries with production ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PlanContext {
    /// Schedule the plan will execute under (`None` = unspecified).
    pub schedule: Option<Schedule>,
    /// Recovery mode the plan will execute under (`None` = unspecified).
    pub recovery: Option<Recovery>,
}

/// Any failure along the cached collapse path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The analyze half failed (nest too deep).
    Analyze(CollapseError),
    /// Instantiation rejected the parameters.
    Bind(BindError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Analyze(e) => write!(f, "plan analysis failed: {e}"),
            PlanError::Bind(e) => write!(f, "plan instantiation failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<CollapseError> for PlanError {
    fn from(e: CollapseError) -> Self {
        PlanError::Analyze(e)
    }
}

impl From<BindError> for PlanError {
    fn from(e: BindError) -> Self {
        PlanError::Bind(e)
    }
}

/// A plain snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a cached plan.
    pub hits: u64,
    /// Lookups that had to analyze (including racing analyses whose
    /// insert lost to a concurrent thread's).
    pub misses: u64,
    /// Entries displaced by the per-shard LRU policy.
    pub evictions: u64,
    /// Plans currently resident across all shards.
    pub entries: usize,
}

struct Entry {
    fingerprint: u64,
    ctx: PlanContext,
    /// Full shape stored for exact matching: fingerprint collisions
    /// must never serve a foreign plan.
    nest: NestSpec,
    plan: Arc<ParamPlan>,
    last_used: u64,
}

struct Shard {
    entries: Mutex<Vec<Entry>>,
}

/// A sharded, lock-striped LRU cache of analyzed [`ParamPlan`]s.
///
/// Lookups hash the nest shape + [`PlanContext`] to a shard; each
/// shard guards a small LRU with one mutex, so concurrent lookups of
/// different shapes rarely contend. Plans are handed out as
/// `Arc<ParamPlan>` — eviction never invalidates a plan a borrower is
/// still instantiating from (the eviction-vs-borrow race is resolved
/// by refcounting, exercised by the `plan_cache_stress` CI smoke).
/// Analysis on a miss runs **outside** the shard lock: a racing
/// analysis of the same shape wastes one analyze but never blocks
/// readers of other shapes on the same shard.
pub struct PlanCache {
    shards: Box<[Shard]>,
    capacity_per_shard: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// Creates a cache with `shards` lock stripes (rounded up to a
    /// power of two, minimum 1) of `capacity_per_shard` plans each.
    pub fn new(shards: usize, capacity_per_shard: usize) -> PlanCache {
        let shards = shards.max(1).next_power_of_two();
        PlanCache {
            shards: (0..shards)
                .map(|_| Shard {
                    entries: Mutex::new(Vec::new()),
                })
                .collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide cache the kernel registry and the DSL pipeline
    /// resolve their plans through (8 shards × 8 plans).
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(|| PlanCache::new(8, 8))
    }

    /// Total plans the cache can hold.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.capacity_per_shard
    }

    /// Snapshot of the hit/miss/eviction counters and residency.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.entries.lock().expect("plan cache poisoned").len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }

    fn fingerprint(nest: &NestSpec, ctx: &PlanContext) -> u64 {
        let mut h = DefaultHasher::new();
        let space = nest.space();
        space.niters().hash(&mut h);
        space.nparams().hash(&mut h);
        for name in space.names() {
            name.hash(&mut h);
        }
        for k in 0..nest.depth() {
            for a in [nest.lower(k), nest.upper(k)] {
                for v in 0..space.len() {
                    a.coeff(v).hash(&mut h);
                }
                a.constant_term().hash(&mut h);
            }
        }
        ctx.hash(&mut h);
        h.finish()
    }

    /// Resolves the plan for `(nest shape, context)`: a cached `Arc` on
    /// a hit, a fresh analysis (inserted LRU-wise) on a miss.
    pub fn get_or_analyze(
        &self,
        nest: &NestSpec,
        ctx: PlanContext,
    ) -> Result<Arc<ParamPlan>, CollapseError> {
        let fp = Self::fingerprint(nest, &ctx);
        let shard = &self.shards[(fp as usize) & (self.shards.len() - 1)];
        if let Some(plan) = self.lookup(shard, fp, &ctx, nest) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        // Analyze outside the shard lock: symbolic analysis is the
        // expensive path and must not serialize unrelated lookups.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(ParamPlan::analyze(nest)?);
        let mut entries = shard.entries.lock().expect("plan cache poisoned");
        // Double-check: a racing thread may have inserted the same key
        // while we analyzed — reuse its entry rather than duplicating.
        if let Some(e) = entries
            .iter_mut()
            .find(|e| e.fingerprint == fp && e.ctx == ctx && &e.nest == nest)
        {
            e.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&e.plan));
        }
        if entries.len() >= self.capacity_per_shard {
            let victim = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty shard at capacity");
            entries.swap_remove(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        entries.push(Entry {
            fingerprint: fp,
            ctx,
            nest: nest.clone(),
            plan: Arc::clone(&plan),
            last_used: self.clock.fetch_add(1, Ordering::Relaxed),
        });
        Ok(plan)
    }

    fn lookup(
        &self,
        shard: &Shard,
        fp: u64,
        ctx: &PlanContext,
        nest: &NestSpec,
    ) -> Option<Arc<ParamPlan>> {
        let mut entries = shard.entries.lock().expect("plan cache poisoned");
        let e = entries
            .iter_mut()
            .find(|e| e.fingerprint == fp && &e.ctx == ctx && &e.nest == nest)?;
        e.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&e.plan))
    }

    /// The one-call service path: resolve the plan (cached or fresh)
    /// and instantiate it at `params`, with full domain validation.
    pub fn collapse(
        &self,
        nest: &NestSpec,
        ctx: PlanContext,
        params: &[i64],
    ) -> Result<Collapsed, PlanError> {
        let plan = self.get_or_analyze(nest, ctx)?;
        Ok(plan.instantiate(params)?)
    }
}

pub use nrl_core::ParamPlan;

#[cfg(test)]
mod tests {
    use super::*;
    use nrl_polyhedra::Space;

    fn shape(c: i64) -> NestSpec {
        let s = Space::new(&["i", "j"], &["N"]);
        NestSpec::new(
            s.clone(),
            vec![(s.cst(0), s.var("N") - 1), (s.cst(0), s.var("i") + c)],
        )
        .unwrap()
    }

    #[test]
    fn hits_after_first_analysis() {
        let cache = PlanCache::new(2, 4);
        let nest = NestSpec::correlation();
        let a = cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        let b = cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn context_separates_entries() {
        let cache = PlanCache::new(2, 4);
        let nest = NestSpec::correlation();
        let plain = cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        let batched = cache
            .get_or_analyze(
                &nest,
                PlanContext {
                    schedule: Some(Schedule::Dynamic(8)),
                    recovery: Some(Recovery::Batched(8)),
                },
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&plain, &batched));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard of two entries: touching A keeps it resident while
        // C displaces B.
        let cache = PlanCache::new(1, 2);
        let (a, b, c) = (shape(0), shape(1), shape(2));
        cache.get_or_analyze(&a, PlanContext::default()).unwrap();
        cache.get_or_analyze(&b, PlanContext::default()).unwrap();
        cache.get_or_analyze(&a, PlanContext::default()).unwrap(); // refresh A
        cache.get_or_analyze(&c, PlanContext::default()).unwrap(); // evicts B
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        cache.get_or_analyze(&a, PlanContext::default()).unwrap();
        assert_eq!(cache.stats().hits, 2, "A must have survived the eviction");
    }

    #[test]
    fn evicted_plans_stay_usable_by_borrowers() {
        let cache = PlanCache::new(1, 1);
        let held = cache
            .get_or_analyze(&NestSpec::correlation(), PlanContext::default())
            .unwrap();
        // Displace the only entry while `held` is still borrowed.
        cache
            .get_or_analyze(&NestSpec::figure6(), PlanContext::default())
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        let collapsed = held.instantiate(&[100]).unwrap();
        assert_eq!(collapsed.total(), 99 * 100 / 2);
    }

    #[test]
    fn cached_collapse_matches_fresh_bind() {
        let cache = PlanCache::new(4, 4);
        let nest = NestSpec::figure6();
        for n in [3i64, 9, 30] {
            let cached = cache.collapse(&nest, PlanContext::default(), &[n]).unwrap();
            let fresh = nrl_core::CollapseSpec::new(&nest)
                .unwrap()
                .bind(&[n])
                .unwrap();
            assert_eq!(cached.total(), fresh.total());
            for pc in 1..=cached.total() {
                assert_eq!(cached.unrank(pc), fresh.unrank(pc), "N={n} pc={pc}");
            }
        }
    }

    #[test]
    fn bind_errors_surface_through_the_cache() {
        let cache = PlanCache::new(1, 4);
        let err = cache
            .collapse(&NestSpec::correlation(), PlanContext::default(), &[0])
            .unwrap_err();
        assert!(matches!(
            err,
            PlanError::Bind(BindError::NegativeTripCount { .. })
        ));
        let err = cache
            .collapse(&NestSpec::correlation(), PlanContext::default(), &[])
            .unwrap_err();
        assert!(matches!(err, PlanError::Bind(BindError::ParamArity { .. })));
    }

    #[test]
    fn concurrent_lookups_keep_counters_consistent() {
        let cache = Arc::new(PlanCache::new(2, 2));
        let shapes: Vec<NestSpec> = (0..5).map(shape).collect();
        let threads = 8usize;
        let per_thread = 50usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                let shapes = &shapes;
                scope.spawn(move || {
                    let mut state = t as u64 + 1;
                    for _ in 0..per_thread {
                        // xorshift — deterministic per-thread mix.
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let nest = &shapes[(state % shapes.len() as u64) as usize];
                        let collapsed =
                            cache.collapse(nest, PlanContext::default(), &[20]).unwrap();
                        assert!(collapsed.total() > 0);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, (threads * per_thread) as u64);
        assert!(stats.entries <= cache.capacity());
    }
}
