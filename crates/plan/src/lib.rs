#![warn(missing_docs)]
//! # nrl-plan — the concurrent plan cache
//!
//! The collapse pipeline splits into an expensive analyze-once half
//! ([`ParamPlan::analyze`]: symbolic ranking sums, parametric
//! lowering, Fourier–Motzkin certificates — see `nrl_core::plan`) and
//! a cheap instantiate-many half
//! ([`ParamPlan::instantiate`]). This crate adds the serving layer on
//! top: [`PlanCache`], a sharded, lock-striped LRU keyed by the nest
//! **shape fingerprint** plus the execution context (schedule +
//! recovery mode), with hit/miss/eviction counters in the
//! `RecoveryCounters` style. Every kernel in the registry and every
//! DSL-built nest resolves its plan through the
//! [global cache](PlanCache::global), so repeated binds of the same
//! shape — the service workload — cost one cache probe and one
//! microsecond-scale instantiation.
//!
//! For service fronts the cache also offers **request coalescing**
//! ([`PlanCache::get_or_analyze_coalesced`]): a per-shape in-flight
//! table makes a thundering herd of N concurrent requests for one
//! uncached shape pay exactly one analysis — one leader runs
//! `analyze`, the other N−1 callers park on its result (counted in
//! [`CacheStats::coalesced`], not as hits or misses). A leader panic
//! propagates the [`CollapseError::Quarantined`] failure to every
//! waiter without poisoning the table: the flight is removed before
//! the payload re-throws, so the next request starts a clean retry.
//!
//! ```
//! use nrl_plan::{PlanCache, PlanContext};
//! use nrl_polyhedra::NestSpec;
//!
//! let cache = PlanCache::new(4, 8);
//! let nest = NestSpec::correlation();
//! // First touch analyzes; later touches (any thread) hit.
//! let collapsed = cache.collapse(&nest, PlanContext::default(), &[1000]).unwrap();
//! assert_eq!(collapsed.total(), 999 * 1000 / 2);
//! let again = cache.collapse(&nest, PlanContext::default(), &[500]).unwrap();
//! assert_eq!(again.total(), 499 * 500 / 2);
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses), (1, 1));
//! ```

use nrl_core::{BindError, CollapseError, Collapsed, Recovery};
use nrl_parfor::Schedule;
use nrl_polyhedra::NestSpec;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a cache mutex ignoring poisoning: an `analyze` unwind (or a
/// panicking borrower) never leaves shard or quarantine bookkeeping in
/// an invalid state — every mutation below is complete before the lock
/// drops — so later callers proceed instead of cascading the panic.
fn lock_immune<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Consecutive analyze panics after which a shape is quarantined:
/// further lookups fail fast with [`CollapseError::Quarantined`]
/// instead of re-running an analysis that keeps crashing the caller.
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// The execution context a plan is cached under. The symbolic plan
/// itself is schedule-independent today, but the key space reserves
/// the axes future context-specialized plans (per-engine calibration,
/// schedule-shaped chunk hints) will occupy — and keeps ablation runs
/// from sharing entries with production ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PlanContext {
    /// Schedule the plan will execute under (`None` = unspecified).
    pub schedule: Option<Schedule>,
    /// Recovery mode the plan will execute under (`None` = unspecified).
    pub recovery: Option<Recovery>,
}

impl PlanContext {
    /// The opaque `u64` discriminator of this context — the key of the
    /// plan's per-context autotune slot
    /// ([`ParamPlan::tuned_strategy`]/[`ParamPlan::tune_strategy`]
    /// take it; `nrl_core` cannot see `PlanContext` itself, the
    /// dependency points the other way). Deterministic within one
    /// process; equal contexts always produce equal keys.
    pub fn key(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Any failure along the cached collapse path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The analyze half failed (nest too deep).
    Analyze(CollapseError),
    /// Instantiation rejected the parameters.
    Bind(BindError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Analyze(e) => write!(f, "plan analysis failed: {e}"),
            PlanError::Bind(e) => write!(f, "plan instantiation failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<CollapseError> for PlanError {
    fn from(e: CollapseError) -> Self {
        PlanError::Analyze(e)
    }
}

impl From<BindError> for PlanError {
    fn from(e: BindError) -> Self {
        PlanError::Bind(e)
    }
}

/// A plain snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a cached plan.
    pub hits: u64,
    /// Lookups that had to analyze (including racing analyses whose
    /// insert lost to a concurrent thread's).
    pub misses: u64,
    /// Entries displaced by the per-shard LRU policy.
    pub evictions: u64,
    /// Lookups refused because the shape is quarantined (counted
    /// separately from hits/misses: a quarantined lookup serves no
    /// plan and runs no analysis).
    pub quarantined: u64,
    /// Coalesced lookups: callers that parked on another thread's
    /// in-flight analysis of the same shape instead of analyzing
    /// themselves (counted separately from hits/misses — a coalesced
    /// wait probes no shard and runs no analysis; only
    /// [`PlanCache::get_or_analyze_coalesced`] can increment this).
    pub coalesced: u64,
    /// Plans currently resident across all shards.
    pub entries: usize,
}

/// One in-flight analysis: the leader publishes its result here and
/// wakes every parked waiter. The slot is written exactly once —
/// including on a leader panic, where the failure is published *before*
/// the payload re-throws — so waiters can never block forever.
struct Flight {
    slot: Mutex<Option<Result<Arc<ParamPlan>, CollapseError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Publishes the leader's result and wakes all waiters.
    fn publish(&self, result: Result<Arc<ParamPlan>, CollapseError>) {
        *lock_immune(&self.slot) = Some(result);
        self.cv.notify_all();
    }

    /// Parks until the leader publishes, then returns its result.
    fn wait(&self) -> Result<Arc<ParamPlan>, CollapseError> {
        let mut slot = lock_immune(&self.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct Entry {
    fingerprint: u64,
    ctx: PlanContext,
    /// Full shape stored for exact matching: fingerprint collisions
    /// must never serve a foreign plan.
    nest: NestSpec,
    plan: Arc<ParamPlan>,
    last_used: u64,
}

struct Shard {
    entries: Mutex<Vec<Entry>>,
}

/// A sharded, lock-striped LRU cache of analyzed [`ParamPlan`]s.
///
/// Lookups hash the nest shape + [`PlanContext`] to a shard; each
/// shard guards a small LRU with one mutex, so concurrent lookups of
/// different shapes rarely contend. Plans are handed out as
/// `Arc<ParamPlan>` — eviction never invalidates a plan a borrower is
/// still instantiating from (the eviction-vs-borrow race is resolved
/// by refcounting, exercised by the `plan_cache_stress` CI smoke).
/// Analysis on a miss runs **outside** the shard lock: a racing
/// analysis of the same shape wastes one analyze but never blocks
/// readers of other shapes on the same shard.
pub struct PlanCache {
    shards: Box<[Shard]>,
    capacity_per_shard: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    quarantined: AtomicU64,
    coalesced: AtomicU64,
    /// Consecutive analyze-panic counts per shape fingerprint; a
    /// successful analysis clears the shape's entry. Tiny (only shapes
    /// that crashed analysis appear), so one mutex suffices.
    quarantine: Mutex<Vec<(u64, u32)>>,
    /// In-flight analyses keyed by shape fingerprint (the coalescing
    /// table). Tiny — an entry exists only while an analysis runs —
    /// so one mutex suffices; it is held only for table bookkeeping,
    /// never across an analysis or a shard operation.
    inflight: Mutex<Vec<(u64, Arc<Flight>)>>,
}

impl PlanCache {
    /// Creates a cache with `shards` lock stripes (rounded up to a
    /// power of two, minimum 1) of `capacity_per_shard` plans each.
    pub fn new(shards: usize, capacity_per_shard: usize) -> PlanCache {
        let shards = shards.max(1).next_power_of_two();
        PlanCache {
            shards: (0..shards)
                .map(|_| Shard {
                    entries: Mutex::new(Vec::new()),
                })
                .collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            quarantine: Mutex::new(Vec::new()),
            inflight: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide cache the kernel registry and the DSL pipeline
    /// resolve their plans through (8 shards × 8 plans).
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(|| PlanCache::new(8, 8))
    }

    /// Total plans the cache can hold.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.capacity_per_shard
    }

    /// Snapshot of the hit/miss/eviction counters and residency.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| lock_immune(&s.entries).len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries,
        }
    }

    fn fingerprint(nest: &NestSpec, ctx: &PlanContext) -> u64 {
        let mut h = DefaultHasher::new();
        let space = nest.space();
        space.niters().hash(&mut h);
        space.nparams().hash(&mut h);
        for name in space.names() {
            name.hash(&mut h);
        }
        for k in 0..nest.depth() {
            for a in [nest.lower(k), nest.upper(k)] {
                for v in 0..space.len() {
                    a.coeff(v).hash(&mut h);
                }
                a.constant_term().hash(&mut h);
            }
        }
        ctx.hash(&mut h);
        h.finish()
    }

    /// Resolves the plan for `(nest shape, context)`: a cached `Arc` on
    /// a hit, a fresh analysis (inserted LRU-wise) on a miss.
    ///
    /// # Fault story
    ///
    /// Analysis runs outside every lock, so a panicking `analyze`
    /// unwinds with the cache fully consistent: the miss is counted,
    /// no entry (or half-entry) exists, the shard's LRU clock is
    /// untouched, and the next caller of the same shape retries
    /// cleanly. The panic itself keeps propagating to the caller.
    /// A shape whose analysis panics [`QUARANTINE_THRESHOLD`] times in
    /// a row is quarantined: further lookups fail fast with
    /// [`CollapseError::Quarantined`] (counted in
    /// [`CacheStats::quarantined`], not as hits or misses) instead of
    /// re-running an analysis that keeps crashing its callers. One
    /// successful analysis clears the shape's failure record.
    pub fn get_or_analyze(
        &self,
        nest: &NestSpec,
        ctx: PlanContext,
    ) -> Result<Arc<ParamPlan>, CollapseError> {
        let fp = Self::fingerprint(nest, &ctx);
        let shard = &self.shards[(fp as usize) & (self.shards.len() - 1)];
        if let Some(plan) = self.lookup(shard, fp, &ctx, nest) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        if let Some(failures) = self.quarantine_failures(fp) {
            if failures >= QUARANTINE_THRESHOLD {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                return Err(CollapseError::Quarantined { failures });
            }
        }
        self.analyze_miss(nest, ctx, fp, shard)
    }

    /// [`Self::get_or_analyze`] with **request coalescing**: when
    /// another thread is already analyzing this `(shape, context)`,
    /// the call parks on that leader's result instead of running a
    /// duplicate analysis — a thundering herd of N concurrent requests
    /// for one uncached shape pays exactly one `analyze` (1 miss,
    /// N−1 [`CacheStats::coalesced`] waits, 0 hits).
    ///
    /// # Fault story
    ///
    /// The leader runs the exact [`Self::get_or_analyze`] miss path,
    /// so its own caller sees identical semantics (panic propagation,
    /// quarantine bookkeeping). Waiters never observe the panic
    /// itself: a leader panic publishes
    /// [`CollapseError::Quarantined`] — with the consecutive-failure
    /// count recorded so far, the same failure the quarantine gate
    /// reports once the threshold is reached — to every parked waiter,
    /// *after* removing the flight from the in-flight table. The table
    /// is therefore never poisoned: the next request for the shape
    /// starts a fresh flight and retries cleanly.
    pub fn get_or_analyze_coalesced(
        &self,
        nest: &NestSpec,
        ctx: PlanContext,
    ) -> Result<Arc<ParamPlan>, CollapseError> {
        let fp = Self::fingerprint(nest, &ctx);
        let shard = &self.shards[(fp as usize) & (self.shards.len() - 1)];
        if let Some(plan) = self.lookup(shard, fp, &ctx, nest) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        if let Some(failures) = self.quarantine_failures(fp) {
            if failures >= QUARANTINE_THRESHOLD {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                return Err(CollapseError::Quarantined { failures });
            }
        }
        // Join the in-flight analysis if one exists, else lead one.
        let (flight, leader) = {
            let mut inflight = lock_immune(&self.inflight);
            match inflight.iter().find(|(f, _)| *f == fp) {
                Some((_, flight)) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight::new());
                    inflight.push((fp, Arc::clone(&flight)));
                    (flight, true)
                }
            }
        };
        if !leader {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            let _wait = obs::span("plan", "plan.coalesced_wait");
            return flight.wait();
        }
        // Leader: run the ordinary miss path (analysis outside every
        // lock), then publish to the waiters. `analyze_miss` re-throws
        // an analyze panic after recording it — catch it here so the
        // flight can be retired and the waiters unblocked first.
        let outcome = catch_unwind(AssertUnwindSafe(|| self.analyze_miss(nest, ctx, fp, shard)));
        let (published, unwind) = match outcome {
            Ok(result) => (result, None),
            Err(payload) => {
                let failures = self.quarantine_failures(fp).unwrap_or(1);
                (Err(CollapseError::Quarantined { failures }), Some(payload))
            }
        };
        // Retire the flight *before* publishing: a request arriving
        // after the waiters wake must start fresh, not join a dead
        // flight. (Waiters hold their own `Arc`, so removal is safe.)
        {
            let mut inflight = lock_immune(&self.inflight);
            if let Some(i) = inflight.iter().position(|(f, _)| *f == fp) {
                inflight.swap_remove(i);
            }
        }
        flight.publish(published.clone());
        match unwind {
            Some(payload) => resume_unwind(payload),
            None => published,
        }
    }

    /// The shared miss path: count the miss, analyze outside every
    /// lock, insert LRU-wise with a racing-insert double-check. An
    /// analyze panic unwinds with the failure recorded for the
    /// quarantine threshold (see [`Self::get_or_analyze`]).
    fn analyze_miss(
        &self,
        nest: &NestSpec,
        ctx: PlanContext,
        fp: u64,
        shard: &Shard,
    ) -> Result<Arc<ParamPlan>, CollapseError> {
        // Analyze outside the shard lock: symbolic analysis is the
        // expensive path and must not serialize unrelated lookups.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let analyzed = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(any(test, feature = "fault-inject"))]
            faults::maybe_panic_in_analyze();
            // Inside the catch: an analyze unwind still closes (and
            // records) the span on the way out.
            let _analyze = obs::span("plan", "plan.analyze");
            ParamPlan::analyze(nest)
        }));
        let plan = match analyzed {
            Ok(result) => Arc::new(result?),
            Err(payload) => {
                // Unwound with no lock held and no entry inserted —
                // record the failure for the quarantine threshold and
                // let the panic keep propagating.
                self.record_analyze_panic(fp);
                resume_unwind(payload);
            }
        };
        self.clear_analyze_panics(fp);
        let mut entries = lock_immune(&shard.entries);
        // Double-check: a racing thread may have inserted the same key
        // while we analyzed — reuse its entry rather than duplicating.
        if let Some(e) = entries
            .iter_mut()
            .find(|e| e.fingerprint == fp && e.ctx == ctx && &e.nest == nest)
        {
            e.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&e.plan));
        }
        if entries.len() >= self.capacity_per_shard {
            let victim = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty shard at capacity");
            entries.swap_remove(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        entries.push(Entry {
            fingerprint: fp,
            ctx,
            nest: nest.clone(),
            plan: Arc::clone(&plan),
            last_used: self.clock.fetch_add(1, Ordering::Relaxed),
        });
        Ok(plan)
    }

    /// Consecutive analyze-panic count recorded for `fp` (`None` when
    /// the shape has no failure record).
    fn quarantine_failures(&self, fp: u64) -> Option<u32> {
        lock_immune(&self.quarantine)
            .iter()
            .find(|(f, _)| *f == fp)
            .map(|(_, n)| *n)
    }

    fn record_analyze_panic(&self, fp: u64) {
        let mut q = lock_immune(&self.quarantine);
        match q.iter_mut().find(|(f, _)| *f == fp) {
            Some((_, n)) => *n = n.saturating_add(1),
            None => q.push((fp, 1)),
        }
    }

    fn clear_analyze_panics(&self, fp: u64) {
        let mut q = lock_immune(&self.quarantine);
        if let Some(i) = q.iter().position(|(f, _)| *f == fp) {
            q.swap_remove(i);
        }
    }

    fn lookup(
        &self,
        shard: &Shard,
        fp: u64,
        ctx: &PlanContext,
        nest: &NestSpec,
    ) -> Option<Arc<ParamPlan>> {
        let mut entries = lock_immune(&shard.entries);
        let e = entries
            .iter_mut()
            .find(|e| e.fingerprint == fp && &e.ctx == ctx && &e.nest == nest)?;
        e.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&e.plan))
    }

    /// The one-call service path: resolve the plan (cached or fresh)
    /// and instantiate it at `params`, with full domain validation.
    pub fn collapse(
        &self,
        nest: &NestSpec,
        ctx: PlanContext,
        params: &[i64],
    ) -> Result<Collapsed, PlanError> {
        let plan = self.get_or_analyze(nest, ctx)?;
        let _inst = obs::span("plan", "plan.instantiate");
        Ok(plan.instantiate(params)?)
    }

    /// [`Self::collapse`] over the coalescing lookup
    /// ([`Self::get_or_analyze_coalesced`]): the service-front path,
    /// where concurrent requests for one uncached shape must share a
    /// single analysis.
    pub fn collapse_coalesced(
        &self,
        nest: &NestSpec,
        ctx: PlanContext,
        params: &[i64],
    ) -> Result<Collapsed, PlanError> {
        let (_plan, collapsed) = self.collapse_coalesced_with_plan(nest, ctx, params)?;
        Ok(collapsed)
    }

    /// [`Self::collapse_coalesced`], additionally handing back the
    /// resolved plan: the autotuning service front needs the plan
    /// alive after instantiation to consult/fill its persisted
    /// per-context strategy slot
    /// ([`ParamPlan::tune_strategy`]) — re-resolving would double the
    /// cache traffic and skew the hit counters.
    pub fn collapse_coalesced_with_plan(
        &self,
        nest: &NestSpec,
        ctx: PlanContext,
        params: &[i64],
    ) -> Result<(Arc<ParamPlan>, Collapsed), PlanError> {
        let plan = self.get_or_analyze_coalesced(nest, ctx)?;
        let collapsed = {
            let _inst = obs::span("plan", "plan.instantiate");
            plan.instantiate(params)?
        };
        Ok((plan, collapsed))
    }
}

pub use nrl_core::ParamPlan;

/// Tracing shim: real `nrl_obs` probes under the `obs-trace` feature,
/// zero-size no-ops otherwise (same pattern as `faults`). Only the
/// cache's slow paths carry spans — hits stay probe-free.
mod obs {
    #[cfg(feature = "obs-trace")]
    pub(crate) use nrl_obs::span;

    #[cfg(not(feature = "obs-trace"))]
    mod noop {
        /// Disabled-probe stand-in; holds nothing, drops to nothing.
        #[derive(Debug)]
        pub(crate) struct Span;

        #[inline(always)]
        pub(crate) fn span(_cat: &'static str, _name: &'static str) -> Option<Span> {
            None
        }
    }
    #[cfg(not(feature = "obs-trace"))]
    pub(crate) use noop::span;
}

/// Deterministic fault hooks for the containment tests (compiled for
/// this crate's own unit tests and under the `fault-inject` feature).
#[cfg(any(test, feature = "fault-inject"))]
pub mod faults {
    use std::cell::Cell;

    thread_local! {
        static ANALYZE_PANICS: Cell<u32> = const { Cell::new(0) };
        static ANALYZE_DELAY: Cell<Option<std::time::Duration>> = const { Cell::new(None) };
    }

    /// The payload message injected analyze panics carry.
    pub const INJECTED_ANALYZE_PANIC: &str = "injected fault: analyze panic";

    /// Makes the next `n` [`PlanCache`](crate::PlanCache) analyses
    /// **on this thread** panic before any real analysis work runs.
    /// Thread-local on purpose: concurrently running tests (or pool
    /// workers) never consume each other's injected faults.
    pub fn inject_analyze_panics(n: u32) {
        ANALYZE_PANICS.with(|c| c.set(n));
    }

    /// Makes every [`PlanCache`](crate::PlanCache) analysis **on this
    /// thread** sleep for `d` before running (and before any injected
    /// panic fires). The coalescing herd tests use this to pin flight
    /// leadership deterministically: arm a delay on the designated
    /// leader, let it enter first, then release the herd while the
    /// leader is provably still inside `analyze`.
    pub fn delay_analyze(d: std::time::Duration) {
        ANALYZE_DELAY.with(|c| c.set(Some(d)));
    }

    /// Clears a [`delay_analyze`] armed on this thread.
    pub fn clear_analyze_delay() {
        ANALYZE_DELAY.with(|c| c.set(None));
    }

    pub(crate) fn maybe_panic_in_analyze() {
        if let Some(d) = ANALYZE_DELAY.with(|c| c.get()) {
            std::thread::sleep(d);
        }
        let fire = ANALYZE_PANICS.with(|c| {
            let v = c.get();
            if v > 0 {
                c.set(v - 1);
            }
            v > 0
        });
        if fire {
            panic!("{INJECTED_ANALYZE_PANIC}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrl_polyhedra::Space;

    fn shape(c: i64) -> NestSpec {
        let s = Space::new(&["i", "j"], &["N"]);
        NestSpec::new(
            s.clone(),
            vec![(s.cst(0), s.var("N") - 1), (s.cst(0), s.var("i") + c)],
        )
        .unwrap()
    }

    #[test]
    fn hits_after_first_analysis() {
        let cache = PlanCache::new(2, 4);
        let nest = NestSpec::correlation();
        let a = cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        let b = cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn context_separates_entries() {
        let cache = PlanCache::new(2, 4);
        let nest = NestSpec::correlation();
        let plain = cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        let batched = cache
            .get_or_analyze(
                &nest,
                PlanContext {
                    schedule: Some(Schedule::Dynamic(8)),
                    recovery: Some(Recovery::Batched(8)),
                },
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&plain, &batched));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard of two entries: touching A keeps it resident while
        // C displaces B.
        let cache = PlanCache::new(1, 2);
        let (a, b, c) = (shape(0), shape(1), shape(2));
        cache.get_or_analyze(&a, PlanContext::default()).unwrap();
        cache.get_or_analyze(&b, PlanContext::default()).unwrap();
        cache.get_or_analyze(&a, PlanContext::default()).unwrap(); // refresh A
        cache.get_or_analyze(&c, PlanContext::default()).unwrap(); // evicts B
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        cache.get_or_analyze(&a, PlanContext::default()).unwrap();
        assert_eq!(cache.stats().hits, 2, "A must have survived the eviction");
    }

    #[test]
    fn evicted_plans_stay_usable_by_borrowers() {
        let cache = PlanCache::new(1, 1);
        let held = cache
            .get_or_analyze(&NestSpec::correlation(), PlanContext::default())
            .unwrap();
        // Displace the only entry while `held` is still borrowed.
        cache
            .get_or_analyze(&NestSpec::figure6(), PlanContext::default())
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        let collapsed = held.instantiate(&[100]).unwrap();
        assert_eq!(collapsed.total(), 99 * 100 / 2);
    }

    #[test]
    fn cached_collapse_matches_fresh_bind() {
        let cache = PlanCache::new(4, 4);
        let nest = NestSpec::figure6();
        for n in [3i64, 9, 30] {
            let cached = cache.collapse(&nest, PlanContext::default(), &[n]).unwrap();
            let fresh = nrl_core::CollapseSpec::new(&nest)
                .unwrap()
                .bind(&[n])
                .unwrap();
            assert_eq!(cached.total(), fresh.total());
            for pc in 1..=cached.total() {
                assert_eq!(cached.unrank(pc), fresh.unrank(pc), "N={n} pc={pc}");
            }
        }
    }

    #[test]
    fn context_keys_discriminate_contexts() {
        let plain = PlanContext::default();
        let pinned = PlanContext {
            schedule: Some(Schedule::Dynamic(8)),
            recovery: Some(Recovery::Batched(8)),
        };
        assert_eq!(plain.key(), PlanContext::default().key());
        assert_eq!(pinned.key(), pinned.key());
        assert_ne!(plain.key(), pinned.key());
    }

    #[test]
    fn with_plan_returns_the_cached_plan_and_a_working_collapse() {
        let cache = PlanCache::new(2, 4);
        let nest = NestSpec::correlation();
        let ctx = PlanContext::default();
        let (plan, collapsed) = cache
            .collapse_coalesced_with_plan(&nest, ctx, &[100])
            .unwrap();
        assert_eq!(collapsed.total(), 99 * 100 / 2);
        let again = cache.get_or_analyze(&nest, ctx).unwrap();
        assert!(
            Arc::ptr_eq(&plan, &again),
            "the handed-back plan must be the cache-resident one"
        );
        // The plan Arc is live after instantiation, so the autotune slot
        // written through it is seen by the next resolve.
        let key = ctx.key();
        assert!(plan.tuned_strategy(key, &[100]).is_none());
        let (tuned, fresh) = plan.tune_strategy_with(
            key,
            &[100],
            &collapsed,
            4,
            &nrl_core::EngineCalibration::STATIC,
        );
        assert!(fresh, "first tune must run the search");
        assert_eq!(plan.tuned_strategy(key, &[100]), Some(tuned));
        let (plan2, _) = cache
            .collapse_coalesced_with_plan(&nest, ctx, &[100])
            .unwrap();
        assert_eq!(plan2.tuned_strategy(key, &[100]), Some(tuned));
    }

    #[test]
    fn bind_errors_surface_through_the_cache() {
        let cache = PlanCache::new(1, 4);
        let err = cache
            .collapse(&NestSpec::correlation(), PlanContext::default(), &[0])
            .unwrap_err();
        assert!(matches!(
            err,
            PlanError::Bind(BindError::NegativeTripCount { .. })
        ));
        let err = cache
            .collapse(&NestSpec::correlation(), PlanContext::default(), &[])
            .unwrap_err();
        assert!(matches!(err, PlanError::Bind(BindError::ParamArity { .. })));
    }

    #[test]
    fn concurrent_lookups_keep_counters_consistent() {
        let cache = Arc::new(PlanCache::new(2, 2));
        let shapes: Vec<NestSpec> = (0..5).map(shape).collect();
        let threads = 8usize;
        let per_thread = 50usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                let shapes = &shapes;
                scope.spawn(move || {
                    let mut state = t as u64 + 1;
                    for _ in 0..per_thread {
                        // xorshift — deterministic per-thread mix.
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let nest = &shapes[(state % shapes.len() as u64) as usize];
                        let collapsed =
                            cache.collapse(nest, PlanContext::default(), &[20]).unwrap();
                        assert!(collapsed.total() > 0);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, (threads * per_thread) as u64);
        assert!(stats.entries <= cache.capacity());
    }

    /// Runs one lookup expecting the injected analyze panic, returning
    /// the panic message.
    fn panicking_lookup(cache: &PlanCache, nest: &NestSpec) -> String {
        faults::inject_analyze_panics(1);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_analyze(nest, PlanContext::default())
        }))
        .expect_err("injected analyze panic must propagate to the caller");
        *payload
            .downcast::<String>()
            .expect("injected panic carries its message")
    }

    #[test]
    fn analyze_panic_leaves_cache_consistent_and_retries() {
        let cache = PlanCache::new(1, 4);
        let nest = NestSpec::correlation();
        let msg = panicking_lookup(&cache, &nest);
        assert_eq!(msg, faults::INJECTED_ANALYZE_PANIC);
        // Fault story: miss counted, no entry (or half-entry), nothing
        // quarantined yet.
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.entries, stats.quarantined),
            (0, 1, 0, 0)
        );
        // The same shape retries cleanly and caches as usual.
        let plan = cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        assert_eq!(plan.instantiate(&[100]).unwrap().total(), 99 * 100 / 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 1));
        cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        assert_eq!(cache.stats().hits, 1, "third lookup must hit");
    }

    #[test]
    fn repeated_analyze_panics_quarantine_the_shape() {
        let cache = PlanCache::new(1, 4);
        let nest = NestSpec::correlation();
        for _ in 0..QUARANTINE_THRESHOLD {
            panicking_lookup(&cache, &nest);
        }
        // No injection armed: the quarantine itself must refuse the
        // lookup before analysis runs.
        let err = cache
            .get_or_analyze(&nest, PlanContext::default())
            .unwrap_err();
        assert!(matches!(
            err,
            CollapseError::Quarantined {
                failures: QUARANTINE_THRESHOLD
            }
        ));
        let err = cache
            .collapse(&nest, PlanContext::default(), &[100])
            .unwrap_err();
        assert!(matches!(
            err,
            PlanError::Analyze(CollapseError::Quarantined { .. })
        ));
        let stats = cache.stats();
        assert_eq!(stats.quarantined, 2, "both refusals counted");
        assert_eq!(
            (stats.hits, stats.misses, stats.entries),
            (0, QUARANTINE_THRESHOLD as u64, 0),
            "quarantined lookups are neither hits nor misses"
        );
        // Other shapes are unaffected.
        cache
            .get_or_analyze(&NestSpec::figure6(), PlanContext::default())
            .unwrap();
    }

    #[test]
    fn successful_analysis_clears_the_failure_record() {
        // One shard, one entry — so a second shape can evict the first
        // and force re-analysis later.
        let cache = PlanCache::new(1, 1);
        let nest = NestSpec::correlation();
        for _ in 0..QUARANTINE_THRESHOLD - 1 {
            panicking_lookup(&cache, &nest);
        }
        // One success wipes the streak.
        cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        // Evict it, then panic twice more: the pre-success failures
        // must not count toward the threshold.
        cache
            .get_or_analyze(&NestSpec::figure6(), PlanContext::default())
            .unwrap();
        for _ in 0..QUARANTINE_THRESHOLD - 1 {
            panicking_lookup(&cache, &nest);
        }
        let plan = cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        assert_eq!(plan.instantiate(&[10]).unwrap().total(), 9 * 10 / 2);
        assert_eq!(cache.stats().quarantined, 0);
    }

    #[test]
    fn coalesced_lookup_behaves_like_plain_on_hits_and_solo_misses() {
        let cache = PlanCache::new(2, 4);
        let nest = NestSpec::correlation();
        let a = cache
            .get_or_analyze_coalesced(&nest, PlanContext::default())
            .unwrap();
        let b = cache
            .get_or_analyze_coalesced(&nest, PlanContext::default())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.coalesced), (1, 1, 0));
        let collapsed = cache
            .collapse_coalesced(&nest, PlanContext::default(), &[100])
            .unwrap();
        assert_eq!(collapsed.total(), 99 * 100 / 2);
        assert_eq!(cache.stats().hits, 2);
    }

    /// Parks a herd of waiters behind a delayed leader and returns the
    /// herd's per-waiter results plus the leader's outcome (its panic
    /// message when `leader_panics`). Leadership is deterministic: the
    /// leader arms a thread-local analyze delay, and the waiters are
    /// only released once the leader's miss is visible in the stats —
    /// i.e. while it is provably inside its (slowed) analysis.
    type WaiterResults = Vec<Result<Arc<ParamPlan>, CollapseError>>;

    fn run_herd(
        cache: &Arc<PlanCache>,
        nest: &NestSpec,
        waiters: usize,
        leader_panics: bool,
    ) -> (WaiterResults, Result<Arc<ParamPlan>, String>) {
        std::thread::scope(|scope| {
            let leader = {
                let cache = Arc::clone(cache);
                let nest = nest.clone();
                scope.spawn(move || {
                    faults::delay_analyze(std::time::Duration::from_millis(300));
                    if leader_panics {
                        faults::inject_analyze_panics(1);
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        cache.get_or_analyze_coalesced(&nest, PlanContext::default())
                    }));
                    faults::clear_analyze_delay();
                    match outcome {
                        Ok(result) => Ok(result.expect("delayed analysis must succeed")),
                        Err(payload) => Err(*payload
                            .downcast::<String>()
                            .expect("injected panic carries its message")),
                    }
                })
            };
            // Release the herd only once the leader owns the flight
            // (its miss is counted before its delayed analysis runs).
            while cache.stats().misses == 0 {
                std::thread::yield_now();
            }
            let herd: Vec<_> = (0..waiters)
                .map(|_| {
                    let cache = Arc::clone(cache);
                    let nest = nest.clone();
                    scope.spawn(move || {
                        cache.get_or_analyze_coalesced(&nest, PlanContext::default())
                    })
                })
                .collect();
            let results = herd.into_iter().map(|h| h.join().unwrap()).collect();
            (results, leader.join().unwrap())
        })
    }

    #[test]
    fn coalesced_herd_pays_exactly_one_analysis() {
        let cache = Arc::new(PlanCache::new(2, 4));
        let nest = NestSpec::correlation();
        let waiters = 32usize;
        let (results, leader) = run_herd(&cache, &nest, waiters, false);
        let lead_plan = leader.expect("leader must succeed");
        for r in &results {
            let plan = r.as_ref().expect("waiters share the leader's success");
            assert!(
                Arc::ptr_eq(plan, &lead_plan),
                "every waiter must receive the leader's plan"
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "the herd pays exactly one analysis");
        assert_eq!(stats.hits, 0);
        assert_eq!(
            stats.coalesced, waiters as u64,
            "every waiter parked on the leader's flight"
        );
        assert!(
            lock_immune(&cache.inflight).is_empty(),
            "the flight is retired once published"
        );
        // The shape is cached for subsequent lookups.
        cache
            .get_or_analyze_coalesced(&nest, PlanContext::default())
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn coalesced_herd_leader_panic_fails_waiters_without_poisoning() {
        let cache = Arc::new(PlanCache::new(2, 4));
        let nest = NestSpec::correlation();
        let waiters = 32usize;
        let (results, leader) = run_herd(&cache, &nest, waiters, true);
        // The leader's own caller sees the raw panic (PR 6 semantics).
        assert_eq!(leader.unwrap_err(), faults::INJECTED_ANALYZE_PANIC);
        // Every waiter gets the Quarantined-path error, not a panic
        // and not a hang.
        for r in results {
            assert!(
                matches!(r, Err(CollapseError::Quarantined { failures: 1 })),
                "waiters observe the recorded failure"
            );
        }
        let stats = cache.stats();
        assert_eq!(
            (stats.misses, stats.hits, stats.coalesced, stats.entries),
            (1, 0, waiters as u64, 0),
            "one failed analysis, no cached entry"
        );
        assert!(
            lock_immune(&cache.inflight).is_empty(),
            "a panicking leader must still retire its flight"
        );
        // The next request starts a fresh flight and retries cleanly.
        let plan = cache
            .get_or_analyze_coalesced(&nest, PlanContext::default())
            .unwrap();
        assert_eq!(plan.instantiate(&[100]).unwrap().total(), 99 * 100 / 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn injected_panics_are_thread_local() {
        // A panic armed on a worker thread fires there and only there:
        // the owning thread's analysis of the same shape succeeds.
        let cache = Arc::new(PlanCache::new(1, 4));
        let nest = NestSpec::correlation();
        std::thread::scope(|scope| {
            let worker = {
                let cache = Arc::clone(&cache);
                let nest = nest.clone();
                scope.spawn(move || panicking_lookup(&cache, &nest))
            };
            assert_eq!(worker.join().unwrap(), faults::INJECTED_ANALYZE_PANIC);
            cache.get_or_analyze(&nest, PlanContext::default()).unwrap();
        });
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.quarantined), (1, 0));
    }
}
