//! §VI.B in action: warp-style execution of a collapsed tetrahedral
//! nest, where each lane recovers its indices once and then strides by
//! the warp width via cheap incrementation.
//!
//! ```text
//! cargo run --release --example gpu_warp
//! ```

use nrl::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let nest = NestSpec::figure6(); // the paper's 3-deep example
    let n = 150i64;
    let collapsed = CollapseSpec::new(&nest)
        .expect("spec")
        .bind(&[n])
        .expect("bind");
    println!("figure-6 nest, N = {n}: {} iterations", collapsed.total());

    // Note: on a CPU each lane *simulates* its W-strided walk, so cost
    // grows with the warp width; a real GPU runs the W lanes in lockstep
    // for free. Keep widths GPU-realistic.
    let pool = ThreadPool::new(4);
    for warp in [32usize, 64, 128] {
        let sum = AtomicU64::new(0);
        let t0 = std::time::Instant::now();
        collapsed.runner(&pool).warp(warp, |_lane, p| {
            // Consecutive pc values live in adjacent lanes → on a real
            // GPU the (i, j, k)-derived accesses coalesce.
            sum.fetch_add((p[0] + p[1] + p[2]) as u64, Ordering::Relaxed);
        });
        println!(
            "warp {warp:>5}: {:8.2} ms  (Σ indices = {})",
            t0.elapsed().as_secs_f64() * 1e3,
            sum.load(Ordering::Relaxed)
        );
    }
    println!("\n(each lane paid exactly one costly recovery; all other steps were");
    println!(" W-fold odometer increments — the paper's memory-coalescing scheme)");
}
