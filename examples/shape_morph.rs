//! Shape morphing — the applications the paper's conclusion announces
//! as future work, built from rank/unrank.
//!
//! Three demonstrations:
//!  1. **Packed layout** (Clauss–Meister, the paper's ref. [8]): store
//!     a strict upper-triangular matrix in rank order — N(N−1)/2
//!     contiguous elements instead of an N×N bounding box — and run a
//!     triangular kernel over it as a pure sequential sweep.
//!  2. **Shape→shape remapping**: drive a lower-triangular traversal
//!     from an upper-triangular one (a transpose-copy without index
//!     arithmetic in user code).
//!  3. **Fusion of different shapes**: run a triangle and a tetrahedron
//!     as ONE load-balanced parallel loop.
//!
//! ```text
//! cargo run --release --example shape_morph
//! ```

use nrl::prelude::*;

fn main() {
    packed_triangle();
    transpose_remap();
    fused_shapes();
}

/// 1. Rank-order packed storage for a triangular domain.
fn packed_triangle() {
    println!("== packed triangular storage ==");
    let n = 2000i64;
    let layout = PackedLayout::for_nest(&NestSpec::correlation(), &[n]);
    println!(
        "strict upper triangle of a {n}x{n} matrix: {} packed elements \
         (dense bounding box would be {})",
        layout.len(),
        n * n
    );

    // Fill A[i][j] = 1/(i+j+1) in visit order (one contiguous write
    // stream), then sum it with a collapsed parallel loop reading the
    // SAME contiguous order — perfect spatial locality.
    let a = PackedArray::from_fn(layout.clone(), |p| 1.0f64 / ((p[0] + p[1]) as f64 + 1.0));
    let serial: f64 = a.as_slice().iter().sum();

    let pool = ThreadPool::with_available_parallelism();
    // Threads accumulate into per-thread cells — the packed array needs
    // no (i, j) arithmetic at all inside the loop.
    let spec = CollapseSpec::new(&NestSpec::correlation()).unwrap();
    let collapsed = spec.bind(&[n]).unwrap();
    let partial = std::sync::Mutex::new(vec![0.0f64; pool.nthreads()]);
    collapsed.runner(&pool).run(|tid, point| {
        let v = *a.get(point);
        // Cheap per-thread accumulation for the demo.
        let mut guard = partial.lock().unwrap();
        guard[tid] += v;
    });
    let parallel: f64 = partial.into_inner().unwrap().iter().sum();
    println!("serial sum   = {serial:.9}");
    println!("parallel sum = {parallel:.9} (same up to fp reassociation)\n");
}

/// 2. Upper triangle → lower triangle, by shared rank.
fn transpose_remap() {
    println!("== shape-to-shape remap (transpose copy) ==");
    let n = 6i64;
    let upper = CollapseSpec::new(&NestSpec::correlation())
        .unwrap()
        .bind(&[n])
        .unwrap();
    // Lower triangle {1 ≤ i < N, 0 ≤ j < i}.
    let s = Space::new(&["i", "j"], &["N"]);
    let lower_nest = NestSpec::new(
        s.clone(),
        vec![(s.cst(1), s.var("N") - 1), (s.cst(0), s.var("i") - 1)],
    )
    .unwrap();
    let lower = CollapseSpec::new(&lower_nest).unwrap().bind(&[n]).unwrap();
    let remap = RankRemap::new(upper, lower).unwrap();
    println!("rank-aligned pairs (upper → lower), N = {n}:");
    for (src, dst) in remap.pairs().take(8) {
        println!("  ({}, {})  ->  ({}, {})", src[0], src[1], dst[0], dst[1]);
    }
    println!("  ... {} pairs total\n", remap.total());
}

/// 3. One balanced parallel loop over a triangle ∪ tetrahedron.
fn fused_shapes() {
    println!("== fusion of different shapes ==");
    let tri = CollapseSpec::new(&NestSpec::correlation())
        .unwrap()
        .bind(&[1200])
        .unwrap();
    let tetra = CollapseSpec::new(&NestSpec::figure6())
        .unwrap()
        .bind(&[150])
        .unwrap();
    println!(
        "part 0: triangle, {} iters; part 1: tetrahedron, {} iters",
        tri.total(),
        tetra.total()
    );
    let fused = FusedLoop::new(vec![tri, tetra]).unwrap();
    let pool = ThreadPool::with_available_parallelism();
    let report = fused.par_for_each(&pool, Schedule::Static, |_tid, part, point| {
        // A stand-in body: both shapes get real work.
        let x = match part {
            0 => point[0] * point[1],
            _ => point[0] * point[1] * point[2],
        };
        std::hint::black_box(x);
    });
    println!("fused static over {} combined iterations:", fused.total());
    print!("{}", report.render());
    println!(
        "iteration imbalance x{:.4} — one schedule, two shapes, no barrier",
        report.iteration_imbalance()
    );
}
