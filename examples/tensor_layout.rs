//! Domain scenario: packing a tetrahedral tensor contiguously using the
//! ranking polynomial as the memory layout — the Clauss–Meister
//! application the paper cites in §III ([8]: array elements relocated in
//! the order the loop nest touches them).
//!
//! A symmetric coefficient tensor `T[i][j][k]` with `k ≤ j ≤ i < N`
//! stores only its `N(N+1)(N+2)/6` canonical entries. The ranking
//! polynomial gives an O(1), hole-free index; unranking walks it back.
//!
//! ```text
//! cargo run --release --example tensor_layout
//! ```

use nrl::prelude::*;

const N: i64 = 60;

fn main() {
    // Canonical index domain: i in 0..N, j in 0..=i, k in 0..=j.
    let s = Space::new(&["i", "j", "k"], &["N"]);
    let nest = NestSpec::new(
        s.clone(),
        vec![
            (s.cst(0), s.var("N") - 1),
            (s.cst(0), s.var("i")),
            (s.cst(0), s.var("j")),
        ],
    )
    .expect("tetrahedral nest");
    let collapsed = CollapseSpec::new(&nest)
        .expect("spec")
        .bind(&[N])
        .expect("bind");

    let total = collapsed.total() as usize;
    println!(
        "tetrahedral tensor N={N}: {total} packed entries (dense would be {})",
        N * N * N
    );
    assert_eq!(total as i64, N * (N + 1) * (N + 2) / 6);

    // Fill the packed storage: slot = rank − 1.
    let mut packed = vec![0.0f64; total];
    let value = |i: i64, j: i64, k: i64| (i * 1_000_000 + j * 1_000 + k) as f64;
    run_seq(&nest.bind(&[N]), |p| {
        let idx = (collapsed.rank(p) - 1) as usize;
        packed[idx] = value(p[0], p[1], p[2]);
    });

    // O(1) random access through the ranking polynomial, with the
    // symmetric-index canonicalization on top.
    let fetch = |mut i: i64, mut j: i64, mut k: i64| -> f64 {
        // sort descending: canonical representative of the orbit
        if i < j {
            std::mem::swap(&mut i, &mut j);
        }
        if j < k {
            std::mem::swap(&mut j, &mut k);
        }
        if i < j {
            std::mem::swap(&mut i, &mut j);
        }
        packed[(collapsed.rank(&[i, j, k]) - 1) as usize]
    };
    assert_eq!(fetch(10, 4, 7), value(10, 7, 4)); // any permutation works
    assert_eq!(fetch(4, 7, 10), value(10, 7, 4));
    println!(
        "random access through rank(): ok (T[10,4,7] = T[10,7,4] = {})",
        fetch(10, 4, 7)
    );

    // Unranking turns a flat slot back into tensor coordinates — e.g.
    // to iterate the packed storage in parallel with original indices.
    let pool = ThreadPool::new(4);
    let checks = std::sync::atomic::AtomicUsize::new(0);
    collapsed.runner(&pool).run(|_t, p| {
        let idx = (collapsed.rank(p) - 1) as usize;
        assert_eq!(packed[idx], value(p[0], p[1], p[2]));
        checks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    println!(
        "verified {} packed entries from a parallel collapsed walk",
        checks.load(std::sync::atomic::Ordering::Relaxed)
    );
}
