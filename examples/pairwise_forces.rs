//! Domain scenario: all-pairs interactions (gravity-style) over the
//! upper-triangular pair space `0 ≤ i < j < N` — the classic
//! load-imbalance victim the paper's intro motivates.
//!
//! Each pair computes a force contribution; forces are accumulated
//! per-thread and reduced, so the collapsed loops stay dependence-free.
//!
//! ```text
//! cargo run --release --example pairwise_forces
//! ```

use nrl::prelude::*;
use std::time::Instant;

const N: usize = 3000;
const THREADS: usize = 4;

fn positions() -> Vec<[f64; 2]> {
    // Deterministic scatter on a spiral — no rand needed here.
    (0..N)
        .map(|k| {
            let a = k as f64 * 0.618;
            [a.cos() * (k as f64).sqrt(), a.sin() * (k as f64).sqrt()]
        })
        .collect()
}

fn force(p: &[[f64; 2]], i: usize, j: usize) -> [f64; 2] {
    let dx = p[j][0] - p[i][0];
    let dy = p[j][1] - p[i][1];
    let d2 = dx * dx + dy * dy + 1e-9;
    let inv = 1.0 / (d2 * d2.sqrt());
    [dx * inv, dy * inv]
}

fn main() {
    let pos = positions();
    // The pair space as a nest: i in 0..=N−2, j in i+1..=N−1.
    let s = Space::new(&["i", "j"], &["N"]);
    let nest = NestSpec::new(
        s.clone(),
        vec![(s.cst(0), s.var("N") - 2), (s.var("i") + 1, s.var("N") - 1)],
    )
    .expect("pair nest");
    let collapsed = CollapseSpec::new(&nest)
        .expect("spec")
        .bind(&[N as i64])
        .expect("bind");
    println!("{} bodies → {} interacting pairs", N, collapsed.total());

    let pool = ThreadPool::new(THREADS);
    // Per-thread force accumulators, reduced after the loop (keeps every
    // iteration write thread-private → dependence-free collapse).
    let mut partial: Vec<Vec<[f64; 2]>> = vec![vec![[0.0; 2]; N]; THREADS];

    let t0 = Instant::now();
    {
        let slots: Vec<_> = partial
            .iter_mut()
            .map(|v| nrl::kernels::SyncSlice::new(v.as_mut_slice()))
            .collect();
        collapsed.runner(&pool).run(|tid, p| {
            let (i, j) = (p[0] as usize, p[1] as usize);
            let f = force(&pos, i, j);
            // SAFETY: slot `tid` is only touched by thread `tid`, and
            // within a thread accesses are sequential.
            unsafe {
                let fi = slots[tid].get_mut(i);
                fi[0] += f[0];
                fi[1] += f[1];
                let fj = slots[tid].get_mut(j);
                fj[0] -= f[0];
                fj[1] -= f[1];
            }
        });
    }
    let elapsed = t0.elapsed();

    // Reduce.
    let mut total = vec![[0.0f64; 2]; N];
    for part in &partial {
        for (acc, f) in total.iter_mut().zip(part) {
            acc[0] += f[0];
            acc[1] += f[1];
        }
    }
    // Newton's third law ⇒ forces sum to ~zero.
    let sum = total
        .iter()
        .fold([0.0f64; 2], |a, f| [a[0] + f[0], a[1] + f[1]]);
    println!(
        "collapsed static on {THREADS} threads: {:.1} ms, net force ({:.2e}, {:.2e})",
        elapsed.as_secs_f64() * 1e3,
        sum[0],
        sum[1]
    );
    let mag: f64 = total.iter().map(|f| f[0].hypot(f[1])).sum();
    println!("Σ|F| = {mag:.3}");
}
