//! Collapsing an *imperfect* nest — the paper's §IX future work,
//! dependence-free case (`nrl_core::imperfect`).
//!
//! The program below is imperfect: `b[i]` is written between the two
//! loop headers and `last[i]` after the inner loop closes —
//!
//! ```text
//! for (i = 0; i < N-1; i++) {
//!     b[i] = i * i;                 // level-0 prologue
//!     for (j = i+1; j < N; j++)
//!         a[i][j] = f(i, j);        // innermost body
//!     last[i] = i + N;              // level-0 epilogue
//! }
//! ```
//!
//! Guarded sinking turns it into a perfect triangular nest whose body
//! consults a [`NestPosition`]: the prologue fires exactly where all
//! inner iterators sit at their lexicographic minimum, the epilogue
//! where they sit at their maximum. The collapsed loop then balances
//! ALL the statements — including the per-row ones — across threads.
//!
//! Since the **row-segmented** executor, those positions are derived
//! from the odometer carry depths of the row walk (`RowWalker`) —
//! computed once per row, not once per point — and the per-row guard
//! counters printed below double as a smoke check: exactly `N − 1`
//! prologues and `N − 1` epilogues must fire, under the once-per-chunk
//! and the lane-batched recovery alike.
//!
//! ```text
//! cargo run --release --example imperfect_rows
//! ```

use nrl::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

fn f(i: i64, j: i64) -> i64 {
    3 * i - 7 * j
}

fn main() {
    let n = 3000i64;
    let nest = NestSpec::correlation();

    // Precondition for guard sinking: every inner loop runs at least
    // once at every prefix (strict trip counts). Proven symbolically
    // under the assumption N ≥ 2.
    let s = nest.space().clone();
    let proof = nest.prove_trip_counts(&[s.var("N") - 2], true);
    println!("strict trip-count proof under N >= 2: {proof:?}");

    // Reference: run the imperfect program literally.
    let mut b_ref = vec![0i64; n as usize];
    let mut last_ref = vec![0i64; n as usize];
    let mut a_sum_ref = 0i64;
    for i in 0..n - 1 {
        b_ref[i as usize] = i * i;
        for j in i + 1..n {
            a_sum_ref = a_sum_ref.wrapping_add(f(i, j));
        }
        last_ref[i as usize] = i + n;
    }

    // Sequential guarded execution (the flattened shape).
    let bound = nest.bind(&[n]);
    let mut b_seq = vec![0i64; n as usize];
    let mut last_seq = vec![0i64; n as usize];
    let mut a_sum_seq = 0i64;
    run_seq_guarded(&bound, |p, pos| {
        let (i, j) = (p[0], p[1]);
        if pos.fires_prologue(0) {
            b_seq[i as usize] = i * i;
        }
        a_sum_seq = a_sum_seq.wrapping_add(f(i, j));
        if pos.fires_epilogue(0) {
            last_seq[i as usize] = i + n;
        }
    });
    assert_eq!(b_seq, b_ref);
    assert_eq!(last_seq, last_ref);
    assert_eq!(a_sum_seq, a_sum_ref);
    println!("sequential guarded run matches the imperfect program");

    // Parallel collapsed execution on the row-segmented guarded
    // executor: every statement instance fires exactly once, wherever
    // its rank lands — under both the once-per-chunk recovery and the
    // lane-batched one (whose guard anchors come through
    // `unrank_batch_into`).
    let collapsed = CollapseSpec::new(&nest).unwrap().bind(&[n]).unwrap();
    let pool = ThreadPool::with_available_parallelism();
    let mut last_report = None;
    for (label, recovery) in [
        ("once-per-chunk", Recovery::OncePerChunk),
        ("lane-batched(64)", Recovery::batched(64).unwrap()),
    ] {
        let b_par: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(0)).collect();
        let last_par: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(0)).collect();
        let a_sum_par = AtomicI64::new(0);
        let prologue_count = AtomicU64::new(0);
        let epilogue_count = AtomicU64::new(0);
        let report = collapsed
            .runner(&pool)
            .recovery(recovery)
            .run_guarded(|_tid, p, pos| {
                let (i, j) = (p[0], p[1]);
                if pos.fires_prologue(0) {
                    prologue_count.fetch_add(1, Ordering::Relaxed);
                    b_par[i as usize].store(i * i, Ordering::Relaxed);
                }
                a_sum_par.fetch_add(f(i, j), Ordering::Relaxed);
                if pos.fires_epilogue(0) {
                    epilogue_count.fetch_add(1, Ordering::Relaxed);
                    last_par[i as usize].store(i + n, Ordering::Relaxed);
                }
            })
            .report;
        let b_par: Vec<i64> = b_par.iter().map(|x| x.load(Ordering::Relaxed)).collect();
        let last_par: Vec<i64> = last_par.iter().map(|x| x.load(Ordering::Relaxed)).collect();
        assert_eq!(b_par, b_ref);
        assert_eq!(last_par, last_ref);
        assert_eq!(a_sum_par.load(Ordering::Relaxed), a_sum_ref);
        // The per-row guard counters ARE the smoke check: one prologue
        // and one epilogue per outer row, never more, never fewer.
        assert_eq!(prologue_count.load(Ordering::Relaxed), (n - 1) as u64);
        assert_eq!(epilogue_count.load(Ordering::Relaxed), (n - 1) as u64);
        println!(
            "parallel segmented run [{label}] matches: {} row prologues, {} row epilogues, checksum {}",
            prologue_count.load(Ordering::Relaxed),
            epilogue_count.load(Ordering::Relaxed),
            a_sum_par.load(Ordering::Relaxed)
        );
        last_report = Some(report);
    }

    // Segment introspection: the first few row segments of the walk a
    // worker would perform from rank 1 — carry depths are exactly the
    // guard boundaries the executor derives positions from.
    let mut walker = collapsed.rows_from(1);
    println!("first row segments from rank 1 (start, len, entry carry, exit carry):");
    let mut remaining = 4u64 * n as u64;
    for _ in 0..4 {
        let i = walker.point()[0];
        let seg = walker.next_segment(remaining);
        println!(
            "  row prefix i={i:<4} j from {:<4} len {:<5} pre_from {:?} post_from {}",
            seg.start, seg.len, seg.pre_from, seg.post_from
        );
        remaining -= seg.len;
    }
    print!("{}", last_report.expect("two runs completed").render());
}
