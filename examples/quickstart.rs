//! Quickstart: collapse the paper's motivating triangular nest and see
//! the load balance change.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nrl::prelude::*;

fn main() {
    // The paper's Fig. 1 loops:  for i in 0..N−1 { for j in i+1..N { … } }
    let nest = NestSpec::correlation();
    println!("input nest:\n{}", nest.render());
    println!("shape: {}", nest.shape().label());

    // Step 1 — the ranking Ehrhart polynomial (§III).
    let ranking = Ranking::new(&nest);
    println!("ranking polynomial: r(i, j) = {}", ranking.render());

    // Step 2 — symbolic inversion, then bind N = 2000 (§IV).
    let n = 2000i64;
    let spec = CollapseSpec::new(&nest).expect("nest is affine and shallow enough");
    let collapsed = spec.bind(&[n]).expect("valid domain");
    println!(
        "collapsed loop: for pc in 1..={}  (N = {n})",
        collapsed.total()
    );

    // Unranking demo: indices recovered from the flattened counter.
    for pc in [1i128, 2, 1999, 2000, collapsed.total()] {
        println!("  unrank({pc:>8}) = {:?}", collapsed.unrank(pc));
    }

    // Step 3 — execute in parallel and compare distributions (§II, §V).
    let pool = ThreadPool::new(5);
    println!("\nouter-parallel schedule(static) — the imbalanced baseline:");
    let outer = run_outer_parallel(&pool, &nest.bind(&[n]), Schedule::Static, |_t, _p| {
        std::hint::black_box(0);
    });
    print!("{}", outer.render());

    println!("\ncollapsed schedule(static) — the paper's transformation:");
    let flat = collapsed
        .runner(&pool)
        .run(|_t, _p| {
            std::hint::black_box(0);
        })
        .report;
    print!("{}", flat.render());
}
