//! Collapse-as-a-service demo: a herd of tenants hammers one service
//! front, and the plain-text metrics report shows what happened —
//! coalesced analyses, quota rejections, deadline expirations, and the
//! recovery-counter totals. A final request runs the reduce verb: the
//! service computes a deterministic aggregate over the domain and
//! returns the value in the reply instead of calling back into a body.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use nrl::prelude::*;
use nrl::serve::ServeError;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let service = Arc::new(CollapseService::new(ServeConfig {
        workers: 4,
        queue_capacity: 8,
        tenant_quota: 4,
        ..ServeConfig::default()
    }));

    // A thundering herd: 16 callers across 4 tenants, all requesting
    // the same uncached triangular shape. The plan cache coalesces the
    // herd onto one analysis (watch `misses` vs `coalesced`/`hits`).
    let n = 500i64;
    let sum = Arc::new(AtomicI64::new(0));
    std::thread::scope(|scope| {
        for caller in 0..16u32 {
            let service = Arc::clone(&service);
            let sum = Arc::clone(&sum);
            scope.spawn(move || {
                let request =
                    CollapseRequest::new(NestSpec::correlation(), vec![n], Tenant(caller % 4));
                match service.run(&request, &|_tid, p| {
                    sum.fetch_add(p[0] + p[1], Ordering::Relaxed);
                }) {
                    Ok(reply) => assert!(reply.outcome.is_completed()),
                    // Quota/queue rejections are expected under a herd:
                    // that is the backpressure working.
                    Err(ServeError::Rejected { .. }) => {}
                    Err(e) => panic!("unexpected serve error: {e}"),
                }
            });
        }
    });

    // One request with a hopeless deadline: it reports exactly how far
    // it got instead of running late.
    let rushed = CollapseRequest::new(NestSpec::correlation(), vec![n], Tenant(9))
        .with_deadline(Duration::ZERO);
    let reply = service.run(&rushed, &|_, _| {}).unwrap();
    println!("deadline demo: {:?}", reply.outcome);

    // The reduce verb: same admission/queue/deadline path, but the
    // work is a reducer and the reply carries the deterministic value
    // (bit-identical no matter how the pool splits the domain). Here:
    // Σ (i + j) over the triangle — every index appears in n−1 pairs.
    struct IndexSum;
    impl ServeReducer for IndexSum {
        fn identity(&self) -> f64 {
            0.0
        }
        fn accum(&self, _tid: usize, point: &[i64], acc: &mut f64) {
            *acc += (point[0] + point[1]) as f64;
        }
        fn join(&self, left: f64, right: f64) -> f64 {
            left + right
        }
    }
    let request = CollapseRequest::new(NestSpec::correlation(), vec![n], Tenant(5));
    let reply = service.reduce(&request, &IndexSum).unwrap();
    let reduced = reply.reduced.expect("reduce verb returns a value");
    let expect = ((n - 1) * n * (n - 1) / 2) as f64;
    assert_eq!(reduced, expect);
    println!("reduce demo: Σ(i+j) = {reduced}\n");

    println!("{}", service.metrics_report());
}
