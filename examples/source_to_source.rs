//! The source-to-source tool on a user-supplied nest: parse a C-like
//! loop nest, print its ranking polynomial and the generated collapsed
//! C (with OpenMP pragma and recovery formulas).
//!
//! ```text
//! cargo run --example source_to_source
//! ```

use nrl::core::CollapseSpec;
use nrl::dsl::{generate_c, parse, CodegenOptions, CodegenStyle};

fn main() {
    // A trapezoidal nest (not in the paper's figures — demonstrating
    // generality): j runs over a shrinking band.
    let src = "params N;
for (i = 0; i < N; i++)
  for (j = i; j < 2 * N - i; j++)
  {
    out[i][j] = work(i, j);
  }";
    println!("--- input ---\n{src}\n");

    let prog = parse(src).expect("syntax");
    let nest = prog.to_nest().expect("affine bounds");
    println!("--- recognized nest ---\n{}", nest.render());
    println!("shape: {}\n", nest.shape().label());

    let spec = CollapseSpec::new(&nest).expect("collapsible");
    println!("ranking polynomial: r = {}\n", spec.ranking().render());
    println!(
        "total iterations: {} (at N = 1000: {})\n",
        {
            let names: Vec<&str> = nest.space().names().iter().map(|s| s.as_str()).collect();
            spec.ranking().total_poly().to_string_with(&names)
        },
        spec.ranking().total_at(&[1000])
    );

    for style in [CodegenStyle::Naive, CodegenStyle::Chunked] {
        let opts = CodegenOptions {
            style,
            schedule: "static".into(),
            sample_params: vec![64],
        };
        let code = generate_c(&prog, &spec, &opts).expect("codegen");
        println!("--- generated C ({style:?}) ---\n{code}");
    }
}
